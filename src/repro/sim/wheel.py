"""Hierarchical timer-wheel scheduler: the million-event fast path.

:class:`WheelEnvironment` replaces the single binary heap of
:class:`~repro.sim.core.Environment` with a two-level timer wheel plus
the original heap kept as far-future overflow:

* **Level 0** -- ``2**slot_bits`` slots of ``2**granularity_bits`` ns
  each (defaults: 4096 slots x 256 ns ~ a 1.05 ms horizon).  Scheduling
  an event is one ``list.append`` into the slot of its deadline --- no
  heap sift through a million pending entries.
* **Level 1** -- ``2**window_bits`` buckets, each covering one full
  level-0 span (default 1024 x 1.05 ms ~ 1.07 s).  A bucket cascades
  into level-0 slots exactly once, when the cursor enters its window.
* **Overflow heap** -- anything beyond the level-1 horizon (and any
  priority/irregular event far in the future) lands in the same
  ``heapq`` the base class uses, so pathological schedules degrade to
  the old behaviour instead of breaking.

The dominant fixed-delay timeouts of this codebase -- network hops,
poll intervals, retry backoffs (microseconds, level 0) and service
times and lease renewals (milliseconds, level 1) -- are all O(1)
appends here.

Ordering invariant
------------------
Event ordering is **bit-identical** to the heap scheduler: pops come in
ascending ``(when, priority, eid)`` order with the same monotonically
increasing ``eid`` tiebreak.  Every structure stores the same 4-tuples
the heap does; a slot is sorted (C timsort) once, when its turn comes,
and every pop compares the active slot's head against the spill and
overflow heads, so an entry can never jump the global order no matter
which structure it sits in.  ``tests/sim/test_wheel.py`` fuzzes this
equivalence against the heap scheduler across 50+ seeds.

Where entries live
------------------
``active``
    The sorted bucket currently being drained (cursor's slot), walked
    by index -- popping is O(1).
``spill``
    A small heap for events scheduled *into the active slot or earlier*
    (e.g. zero-delay wakeups) after the slot was sorted.  Always
    strictly earlier than every level-0/level-1 entry.
``slots0[i]`` / ``slots1[j]``
    Unsorted append-only buckets.  Two entries can share a physical
    bucket only if they share the same absolute slot/window number
    (the horizons guarantee it), so no lap-counting is needed.
``overflow``
    ``self._queue`` -- the inherited heap.

When the wheel runs completely dry the cursor re-anchors itself to the
current time on the next insert, so a schedule that went far-future
(overflow only) does not degrade every later insert to the heap.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import Any, Optional, Union

from repro import perf
from repro.sim.core import Environment, EmptySchedule, StopSimulation, _TIMEOUT_POOL_MAX
from repro.sim.events import NORMAL, Event, Timeout

#: Priority used by ``run(until=<int>)`` stop markers (matches the base
#: class, which the ordering-equivalence tests rely on).
_STOP_PRIORITY = 1 << 30


class WheelEnvironment(Environment):
    """Drop-in :class:`Environment` with a hierarchical timer wheel.

    Identical simulated results, different wall-clock complexity:
    scheduling is O(1) instead of O(log n) in the number of pending
    events, which is what makes million-invocation open-loop runs
    (~10^5..10^6 concurrently pending timers) routinely benchmarkable.
    See :mod:`repro.experiments.scale`.
    """

    __slots__ = (
        "_gbits",
        "_sbits0",
        "_mask0",
        "_smask0",
        "_mask1",
        "_slots0",
        "_slots1",
        "_cursor",
        "_active",
        "_ai",
        "_spill",
        "_l0_count",
        "_l1_count",
        "cascades",
        "overflow_inserts",
    )

    def __init__(
        self,
        initial_time: int = 0,
        granularity_bits: int = 8,
        slot_bits: int = 12,
        window_bits: int = 10,
    ) -> None:
        super().__init__(initial_time)
        if granularity_bits < 0 or slot_bits < 1 or window_bits < 1:
            raise ValueError("wheel geometry bits must be positive")
        self._gbits = granularity_bits
        self._sbits0 = slot_bits
        self._mask0 = (1 << slot_bits) - 1
        #: ``cursor & _smask0 == 0`` marks a level-1 window boundary.
        self._smask0 = self._mask0
        self._mask1 = (1 << window_bits) - 1
        self._slots0: list[list[tuple]] = [[] for _ in range(1 << slot_bits)]
        self._slots1: list[list[tuple]] = [[] for _ in range(1 << window_bits)]
        #: Absolute level-0 slot number of the slot being drained.
        self._cursor = initial_time >> granularity_bits
        self._active: list[tuple] = []
        self._ai = 0
        self._spill: list[tuple] = []
        self._l0_count = 0
        self._l1_count = 0
        #: Level-1 buckets cascaded into level 0 (lifetime).
        self.cascades = 0
        #: Entries that bypassed the wheel into the overflow heap.
        self.overflow_inserts = 0

    # -- scheduling ----------------------------------------------------

    def _insert(self, entry: tuple) -> None:
        """File *entry* into spill/level-0/level-1/overflow by deadline."""
        s0 = entry[0] >> self._gbits
        for _ in range(2):
            d0 = s0 - self._cursor
            if d0 <= 0:
                # Active slot or earlier (>= now by construction): the
                # spill heap merges with the sorted active bucket at pop.
                heappush(self._spill, entry)
                return
            if d0 <= self._mask0:
                self._slots0[s0 & self._mask0].append(entry)
                self._l0_count += 1
                return
            d1 = (s0 >> self._sbits0) - (self._cursor >> self._sbits0)
            if d1 <= self._mask1:
                self._slots1[(s0 >> self._sbits0) & self._mask1].append(entry)
                self._l1_count += 1
                return
            if (
                self._l0_count
                or self._l1_count
                or self._spill
                or self._ai < len(self._active)
                or self._cursor >= self._now >> self._gbits
            ):
                break
            # Wheel completely dry and the cursor far in the past
            # (overflow pops advance time without moving it): re-anchor
            # to now and classify once more.
            self._cursor = self._now >> self._gbits
        self.overflow_inserts += 1
        heappush(self._queue, entry)

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue *event* to be processed *delay* ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._insert((self._now + int(delay), priority, next(self._eid), event))

    def schedule_timeout(self, event: Event, delay: int) -> None:
        """Fast-path scheduling of pre-validated NORMAL-priority events.

        The two dominant destinations -- a level-0 slot ahead of the
        cursor, or the spill heap for same-slot-or-earlier deadlines --
        are classified inline; everything else (level 1, overflow,
        re-anchoring) falls through to :meth:`_insert`.  Both paths
        build identical entry tuples, so ordering is unaffected.
        """
        when = self._now + delay
        s0 = when >> self._gbits
        d0 = s0 - self._cursor
        if d0 > 0:
            if d0 <= self._mask0:
                self._slots0[s0 & self._mask0].append(
                    (when, NORMAL, next(self._eid), event)
                )
                self._l0_count += 1
                return
            self._insert((when, NORMAL, next(self._eid), event))
            return
        heappush(self._spill, (when, NORMAL, next(self._eid), event))

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Pooled timeout (see base class), scheduled through the wheel."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            if type(delay) is not int:
                delay = int(delay)
            event: Timeout = pool.pop()
            event.callbacks = []
            event._delay = delay
            event._value = value
            self.schedule_timeout(event, delay)
            return event
        return Timeout(self, delay, value)

    # -- dequeue -------------------------------------------------------

    def _cascade(self, window: int) -> None:
        """Scatter level-1 *window*'s bucket into level-0 slots."""
        index = window & self._mask1
        bucket = self._slots1[index]
        if not bucket:
            return
        self._slots1[index] = []
        self._l1_count -= len(bucket)
        self._l0_count += len(bucket)
        self.cascades += 1
        gbits, mask0, slots0 = self._gbits, self._mask0, self._slots0
        for entry in bucket:
            slots0[(entry[0] >> gbits) & mask0].append(entry)

    def _refill(self) -> None:
        """Advance the cursor to the next occupied slot and sort it.

        Precondition: the active bucket is exhausted, the spill heap is
        empty and ``_l0_count + _l1_count > 0`` (so the scan provably
        terminates).  Cascades level-1 buckets at each window boundary
        it crosses; when level 0 is empty it jumps window-to-window
        instead of probing all 4096 slots.
        """
        c = self._cursor
        slots0, mask0, smask0 = self._slots0, self._mask0, self._smask0
        sbits0 = self._sbits0
        while True:
            c += 1
            if not c & smask0:
                self._cascade(c >> sbits0)
            bucket = slots0[c & mask0]
            if bucket:
                break
            if not self._l0_count:
                # Nothing in level 0: skip straight to the last slot of
                # this window so the next increment cascades the next one.
                c |= smask0
        self._cursor = c
        slots0[c & mask0] = []
        self._l0_count -= len(bucket)
        bucket.sort()
        self._active = bucket
        self._ai = 0

    def _pop(self) -> tuple:
        """Remove and return the globally minimal ``(when, prio, eid,
        event)`` entry; raises ``IndexError`` when nothing is pending."""
        while True:
            active = self._active
            ai = self._ai
            if ai < len(active):
                entry = active[ai]
                spill = self._spill
                if spill and spill[0] < entry:
                    entry = spill[0]
                    overflow = self._queue
                    if overflow and overflow[0] < entry:
                        return heappop(overflow)
                    return heappop(spill)
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    return heappop(overflow)
                self._ai = ai + 1
                # Drop the bucket's reference so the Timeout free list's
                # getrefcount guard sees the same counts as the heap path.
                active[ai] = None
                return entry
            spill = self._spill
            if spill:
                # Spill entries precede everything in level 0/1.
                entry = spill[0]
                overflow = self._queue
                if overflow and overflow[0] < entry:
                    return heappop(overflow)
                return heappop(spill)
            if not (self._l0_count or self._l1_count):
                return heappop(self._queue)
            self._refill()

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if none.

        O(pending) -- it scans the wheel without draining it.  Fine for
        the occasional caller; the run loop never uses it.
        """
        best: Optional[tuple] = None
        if self._ai < len(self._active):
            best = self._active[self._ai]
        for heap in (self._spill, self._queue):
            if heap and (best is None or heap[0] < best):
                best = heap[0]
        if self._l0_count:
            for bucket in self._slots0:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
        if self._l1_count:
            for bucket in self._slots1:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
        return best[0] if best is not None else None

    def pending_events(self) -> int:
        """Total events currently scheduled (all structures)."""
        return (
            len(self._active)
            - self._ai
            + len(self._spill)
            + self._l0_count
            + self._l1_count
            + len(self._queue)
        )

    def occupancy(self) -> dict[str, int]:
        """Wheel-vs-heap residency right now, plus lifetime counters.

        ``wheel`` counts entries the O(1) paths own (active + spill +
        both levels); ``heap`` is the overflow residue.  The scale
        bench samples this and publishes the peaks through
        :mod:`repro.perf` (``wheel_entries`` / ``heap_entries``).
        """
        wheel = len(self._active) - self._ai + len(self._spill)
        return {
            "wheel": wheel + self._l0_count + self._l1_count,
            "active": len(self._active) - self._ai,
            "spill": len(self._spill),
            "level0": self._l0_count,
            "level1": self._l1_count,
            "heap": len(self._queue),
            "cascades": self.cascades,
            "overflow_inserts": self.overflow_inserts,
        }

    def sample_occupancy(self) -> dict[str, int]:
        """:meth:`occupancy`, also published to :mod:`repro.perf`.

        While counting is enabled, ``perf.counters.wheel_entries`` /
        ``heap_entries`` track the *peak* sampled residency and the
        cascade/overflow lifetime totals are brought up to date, so
        bench snapshots show where the schedule actually lived.
        """
        occupancy = self.occupancy()
        if perf.enabled:
            counters = perf.counters
            if occupancy["wheel"] > counters.wheel_entries:
                counters.wheel_entries = occupancy["wheel"]
            if occupancy["heap"] > counters.heap_entries:
                counters.heap_entries = occupancy["heap"]
            counters.wheel_cascades = max(counters.wheel_cascades, self.cascades)
            counters.wheel_overflow_inserts = max(
                counters.wheel_overflow_inserts, self.overflow_inserts
            )
        return occupancy

    # -- event loop ----------------------------------------------------

    def step(self) -> None:
        """Process exactly one event (same semantics as the base class)."""
        try:
            when, _prio, _eid, event = self._pop()
        except IndexError:
            raise EmptySchedule("no more events") from None
        self._now = when
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event failed with non-exception {exc!r}")

        if (
            event.__class__ is Timeout
            and event._ok
            and not event._defused
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
            and sys.getrefcount(event) == 2
        ):
            self._timeout_pool.append(event)  # type: ignore[arg-type]
            self._timeout_pool_appends += 1

    def run(self, until: Union[None, int, Event] = None) -> Any:
        """Run the simulation (same contract as the base class)."""
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                at = int(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self._insert((at, _STOP_PRIORITY, next(self._eid), stop))
                stop.callbacks.append(StopSimulation.callback)

        # Inlined loop mirroring Environment.run; only the dequeue
        # differs.  The common case of _pop -- next entry comes from the
        # sorted active bucket -- is inlined here because a method call
        # per event is measurable at millions of events; spill and
        # overflow are bound once (heappush/heappop mutate them in
        # place, only _active changes identity, at refill).
        pop = self._pop
        spill = self._spill
        overflow = self._queue
        pool = self._timeout_pool
        getrefcount = sys.getrefcount
        timeout_cls = Timeout
        processed = 0
        pooled = 0
        try:
            while True:
                active = self._active
                ai = self._ai
                if ai < len(active):
                    entry = active[ai]
                    if spill and spill[0] < entry:
                        head = spill[0]
                        if overflow and overflow[0] < head:
                            entry = heappop(overflow)
                        else:
                            entry = heappop(spill)
                    elif overflow and overflow[0] < entry:
                        entry = heappop(overflow)
                    else:
                        self._ai = ai + 1
                        active[ai] = None
                    when, _prio, _eid, event = entry
                else:
                    try:
                        when, _prio, _eid, event = pop()
                    except IndexError:
                        if isinstance(until, Event) and not until.triggered:
                            raise RuntimeError(
                                "simulation ran out of events before the awaited event triggered"
                            ) from None
                        return None
                self._now = when
                processed += 1

                callbacks, event.callbacks = event.callbacks, None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)

                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(f"event failed with non-exception {exc!r}")

                if (
                    event.__class__ is timeout_cls
                    and event._ok
                    and not event._defused
                    and len(pool) < _TIMEOUT_POOL_MAX
                    and getrefcount(event) == 2
                ):
                    pool.append(event)
                    pooled += 1
        except StopSimulation as stop:
            return stop.args[0]
        finally:
            self.events_processed += processed
            self._timeout_pool_appends += pooled

    def __repr__(self) -> str:
        return f"<WheelEnvironment t={self._now}ns queued={self.pending_events()}>"


#: Registry used by :func:`new_environment`.
SCHEDULERS = ("heap", "wheel")


def new_environment(scheduler: Optional[str] = None, initial_time: int = 0, **kwargs: Any):
    """Build an :class:`Environment` with the requested scheduler.

    ``scheduler`` is ``"heap"`` (the binary-heap baseline, default),
    ``"wheel"`` (hierarchical timer wheel) or ``None`` for the default.
    Extra keyword arguments configure the wheel geometry.
    """
    scheduler = scheduler or "heap"
    if scheduler == "heap":
        if kwargs:
            raise ValueError(f"heap scheduler takes no options, got {sorted(kwargs)}")
        return Environment(initial_time)
    if scheduler == "wheel":
        return WheelEnvironment(initial_time, **kwargs)
    raise ValueError(f"unknown scheduler {scheduler!r} (use one of {SCHEDULERS})")
