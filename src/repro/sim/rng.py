"""Deterministic random-number streams.

Every stochastic element of the simulation (job arrivals, payload
contents, compute jitter) draws from a named stream derived from one
root seed, so that adding a new consumer never perturbs the draws seen
by existing consumers -- runs stay comparable across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *path: str) -> int:
    """Deterministically split *root_seed* along a name path.

    Folds each path element with SHA-256, exactly as chained
    :meth:`RngStreams.spawn` calls would, so
    ``derive_seed(root, "a", "b") == RngStreams(root).spawn("a").spawn("b").root_seed``.
    This is the seed-splitting contract the parallel engine relies on:
    a worker that knows only ``(root_seed, path)`` reconstructs the same
    streams the serial run would have used, in any process, in any order.
    """
    seed = int(root_seed)
    for part in path:
        digest = hashlib.sha256(f"{seed}/{part}".encode()).digest()
        seed = int.from_bytes(digest[:8], "little")
    return seed


def shard_seed(root_seed: int, shard: int) -> int:
    """The derived root seed for shard *shard* of a sharded scenario.

    ``derive_seed(root, "shard", k)`` -- the seed-splitting contract the
    sharded scale engine uses for its independent-streams ("thin")
    decomposition: shard k's streams depend only on ``(root_seed, k)``,
    never on which worker process runs it or in what order, so a
    K-shard run is bit-identical across repeats and worker counts.
    """
    return derive_seed(root_seed, "shard", str(int(shard)))


def shard_seeds(root_seed: int, shards: int) -> list[int]:
    """:func:`shard_seed` for every shard of a K-way decomposition."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [shard_seed(root_seed, shard) for shard in range(shards)]


class RngStreams:
    """A family of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0xC0FFEE) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for *name*, created on first use.

        The same (root_seed, name) pair always yields the same sequence.
        """
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "little")
            generator = np.random.default_rng(seed)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """A child family, independent of this one."""
        return RngStreams(derive_seed(self.root_seed, name))

    def spawn_seed(self, name: str) -> int:
        """The root seed :meth:`spawn` would give the child named *name*."""
        return derive_seed(self.root_seed, name)
