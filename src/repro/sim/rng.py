"""Deterministic random-number streams.

Every stochastic element of the simulation (job arrivals, payload
contents, compute jitter) draws from a named stream derived from one
root seed, so that adding a new consumer never perturbs the draws seen
by existing consumers -- runs stay comparable across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A family of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0xC0FFEE) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for *name*, created on first use.

        The same (root_seed, name) pair always yields the same sequence.
        """
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "little")
            generator = np.random.default_rng(seed)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """A child family, independent of this one."""
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "little"))
