"""Arrival-time generators for the open-loop scale harness.

The scale engine (``repro.experiments.scale``) needs one thing from an
arrival model: the **global sequence of absolute arrival times**, drawn
deterministically from a seeded generator, in bounded-memory chunks.
Centralizing that sequence is what makes scenario *sharding* exact: a
shard that keeps every K-th arrival of the global sequence simulates a
systematic thinning of the very process the unsharded run would have
seen, so per-shard results fold back without statistical drift.

Three shapes, all with the same long-run mean rate ``1/mean_gap_ns``:

* ``poisson`` -- exponential inter-arrival gaps.  The gap recipe
  (chunked ``Generator.exponential``, ``int64``, floor at 1 ns) is
  byte-for-byte the one the PR 4 driver used, so a 1-shard partition
  run replays the identical arrival stream.
* ``bursty`` -- a compound process: burst *epochs* arrive with
  exponential gaps of mean ``mean_gap_ns * burst_len``; each epoch
  releases ``burst_len`` invocations spaced ``burst_intra_gap_ns``
  apart (the :mod:`repro.workloads.tenants` "bursty" profile, rescaled
  from tenant mixes to the scale harness).
* ``diurnal`` -- a non-homogeneous Poisson process whose rate follows a
  piecewise-constant profile of ``multipliers`` repeating every
  ``period_ns`` (a day curve compressed to simulation scale).  Drawn by
  the time-change theorem: unit-rate exponential "operational" times
  are mapped through the inverse of the integrated rate, which for a
  piecewise-constant profile is piecewise-linear and inverts exactly
  with a vectorized ``searchsorted``.

Every generator yields ``numpy.int64`` arrays of **absolute** times
(non-decreasing, first arrival >= 1 ns) totalling exactly ``count``
entries; peak memory is one chunk regardless of ``count``.

:func:`merge_tenant_streams` lifts per-tenant streams into one global
calendar: a ``(times, tenants)`` chunk sequence, globally non-decreasing
in time, with a tenant-id column that the multi-tenant scale engine
carries through every slab.  Ties (equal arrival times across tenants)
break on the lowest tenant id via a stable ``np.lexsort``, so the
merged order is a pure function of the input streams -- the property
the batch/per-event bit-identity contract rests on.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

#: Chunk size for pre-batched draws; matches the scale driver's RNG
#: chunking so partition-mode shards replay identical stream prefixes.
ARRIVAL_CHUNK = 1 << 16

#: The dtype every generator yields (and batch admission expects):
#: absolute nanosecond deadlines as signed 64-bit ints.  Using one
#: named dtype everywhere keeps the float->int truncation step
#: identical across shapes, which the bit-identity contract between
#: batch and per-event admission depends on.
ARRIVAL_DTYPE = np.int64

#: Arrival shapes understood by :func:`arrival_times`.
SHAPES = ("poisson", "bursty", "diurnal")

#: Default diurnal profile: 24 "hours" of rate multipliers with a deep
#: night trough and an evening peak (mean-normalized internally, so the
#: long-run rate is still ``1/mean_gap_ns``).
DIURNAL_DAY = (
    0.25, 0.20, 0.20, 0.30, 0.50, 0.80,
    1.20, 1.60, 1.90, 2.00, 1.90, 1.70,
    1.50, 1.40, 1.40, 1.50, 1.60, 1.70,
    1.60, 1.40, 1.10, 0.80, 0.50, 0.35,
)


def _poisson_times(
    rng: np.random.Generator, count: int, mean_gap_ns: float, chunk: int
) -> Iterator[np.ndarray]:
    now = 0
    remaining = count
    while remaining:
        size = min(chunk, remaining)
        draws = rng.exponential(mean_gap_ns, size=size)
        gaps = np.maximum(draws.astype(ARRIVAL_DTYPE), 1)
        times = now + np.cumsum(gaps)
        now = int(times[-1])
        remaining -= size
        yield times


def _bursty_times(
    rng: np.random.Generator,
    count: int,
    mean_gap_ns: float,
    burst_len: int,
    intra_gap_ns: int,
    chunk: int,
) -> Iterator[np.ndarray]:
    if burst_len < 1:
        raise ValueError(f"burst_len must be >= 1, got {burst_len}")
    if intra_gap_ns < 0:
        raise ValueError(f"burst_intra_gap_ns must be >= 0, got {intra_gap_ns}")
    epoch = 0
    last = 0
    remaining = count
    bursts_per_chunk = max(1, chunk // burst_len)
    offsets = np.arange(burst_len, dtype=ARRIVAL_DTYPE) * intra_gap_ns
    while remaining:
        bursts = min(bursts_per_chunk, -(-remaining // burst_len))
        draws = rng.exponential(mean_gap_ns * burst_len, size=bursts)
        gaps = np.maximum(draws.astype(ARRIVAL_DTYPE), 1)
        epochs = epoch + np.cumsum(gaps)
        epoch = int(epochs[-1])
        times = (epochs[:, None] + offsets[None, :]).reshape(-1)
        if times.size > remaining:
            times = times[:remaining]
        # An epoch gap shorter than the burst span (burst_len *
        # intra_gap_ns) makes consecutive bursts overlap; clamp against
        # the running maximum, carried across chunk boundaries, to keep
        # the stream non-decreasing.
        times[0] = max(int(times[0]), last)
        np.maximum.accumulate(times, out=times)
        last = int(times[-1])
        remaining -= times.size
        yield times


def _diurnal_times(
    rng: np.random.Generator,
    count: int,
    mean_gap_ns: float,
    period_ns: int,
    multipliers: Sequence[float],
    chunk: int,
) -> Iterator[np.ndarray]:
    profile = np.asarray(multipliers, dtype=np.float64)
    if profile.size == 0 or bool((profile <= 0).any()):
        raise ValueError("diurnal multipliers must be a non-empty positive sequence")
    if period_ns < profile.size:
        raise ValueError(f"diurnal period {period_ns} ns shorter than its profile")
    # Normalize so the long-run mean rate is exactly 1/mean_gap_ns, then
    # precompute the per-period piecewise-linear integrated rate.
    rates = profile / profile.mean()  # operational-seconds per second
    segment_ns = period_ns / profile.size
    # Operational time accumulated at the *end* of each segment.
    ops_edges = np.cumsum(rates) * segment_ns
    ops_per_period = float(ops_edges[-1])  # == period_ns by normalization
    ops_starts = ops_edges - rates * segment_ns

    ops_now = 0.0
    last = 0
    remaining = count
    while remaining:
        size = min(chunk, remaining)
        # Gaps in operational time are plain exponentials (time-change
        # theorem); the int64 floor happens after mapping back to real
        # time so sub-segment geometry is preserved.
        ops = ops_now + np.cumsum(rng.exponential(mean_gap_ns, size=size))
        ops_now = float(ops[-1])
        periods, rem = np.divmod(ops, ops_per_period)
        segment = np.minimum(
            np.searchsorted(ops_edges, rem, side="right"), rates.size - 1
        )
        within = (rem - ops_starts[segment]) / rates[segment]
        real = periods * period_ns + segment * segment_ns + within
        times = np.maximum(real.astype(ARRIVAL_DTYPE), 1)
        # Integer truncation can locally reorder by 1 ns across a
        # segment edge; restore monotonicity (exact ops times are
        # strictly increasing, so this only touches rounding ties).
        # The running maximum is carried across chunk boundaries so an
        # inversion landing exactly on a boundary is repaired too.
        times[0] = max(int(times[0]), last)
        np.maximum.accumulate(times, out=times)
        last = int(times[-1])
        remaining -= size
        yield times


def arrival_times(
    shape: str,
    rng: np.random.Generator,
    count: int,
    mean_gap_ns: float,
    *,
    burst_len: int = 64,
    burst_intra_gap_ns: int = 1,
    diurnal_period_ns: int = 0,
    diurnal_multipliers: Sequence[float] = DIURNAL_DAY,
    chunk: int = ARRIVAL_CHUNK,
) -> Iterator[np.ndarray]:
    """Chunked absolute arrival times for *shape* (see module docs).

    ``diurnal_period_ns=0`` auto-sizes the period to a quarter of the
    expected arrival span (``count * mean_gap_ns / 4``), so the default
    scenario sweeps through four full day curves whatever its scale.
    """
    if count < 1:
        raise ValueError(f"arrival stream needs at least one arrival, got {count}")
    if mean_gap_ns <= 0:
        raise ValueError(f"mean_gap_ns must be positive, got {mean_gap_ns}")
    if shape == "poisson":
        return _poisson_times(rng, count, mean_gap_ns, chunk)
    if shape == "bursty":
        return _bursty_times(rng, count, mean_gap_ns, burst_len, burst_intra_gap_ns, chunk)
    if shape == "diurnal":
        period = int(diurnal_period_ns) or max(
            len(diurnal_multipliers), int(count * mean_gap_ns) // 4
        )
        return _diurnal_times(rng, count, mean_gap_ns, period, diurnal_multipliers, chunk)
    raise ValueError(f"unknown arrival shape {shape!r} (expected one of {SHAPES})")


#: Dtype of the tenant-id column produced by :func:`merge_tenant_streams`.
TENANT_DTYPE = np.int32


def merge_tenant_streams(
    streams: Sequence[Iterator[np.ndarray]],
    chunk: int = ARRIVAL_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Merge per-tenant arrival streams into one tagged global calendar.

    Yields ``(times, tenants)`` pairs -- ``times`` an ``int64`` array of
    absolute arrival times, globally non-decreasing across all yielded
    chunks, and ``tenants`` the parallel ``int32`` column of stream
    indices.  Equal times order by ascending tenant id (stable lexsort,
    primary key time, secondary key tenant).

    The merge is barrier-based so memory stays bounded: each round tops
    up every live tenant's buffer to ~one chunk, then emits the prefix
    of the combined buffer at or below the *barrier* -- the smallest
    last-buffered time over tenants that still have arrivals pending.
    Everything retained is provably later than everything emitted (a
    non-exhausted tenant can only produce times beyond its buffered
    horizon), which is what makes the output globally non-decreasing.
    """
    iters = [iter(s) for s in streams]
    if not iters:
        raise ValueError("merge_tenant_streams needs at least one stream")
    buffers: list[np.ndarray] = [np.empty(0, dtype=ARRIVAL_DTYPE) for _ in iters]
    live = [True] * len(iters)
    while True:
        # Top up: every live tenant holds at least `chunk` buffered
        # arrivals (or is exhausted), so the barrier advances by at
        # least one chunk's span per round.
        for t, it in enumerate(iters):
            if not live[t]:
                continue
            parts = [buffers[t]]
            size = buffers[t].size
            while size < chunk:
                block = next(it, None)
                if block is None:
                    live[t] = False
                    break
                parts.append(block)
                size += block.size
            if len(parts) > 1:
                buffers[t] = np.concatenate(parts)
        pending = [t for t in range(len(iters)) if live[t]]
        if pending:
            barrier = min(int(buffers[t][-1]) for t in pending)
            emit = [
                buf[: np.searchsorted(buf, barrier, side="right")] for buf in buffers
            ]
            buffers = [
                buf[np.searchsorted(buf, barrier, side="right") :] for buf in buffers
            ]
        else:
            emit, buffers = buffers, [b[:0] for b in buffers]
        total = sum(part.size for part in emit)
        if total:
            times = np.concatenate([part for part in emit if part.size])
            tenants = np.concatenate(
                [
                    np.full(part.size, t, dtype=TENANT_DTYPE)
                    for t, part in enumerate(emit)
                    if part.size
                ]
            )
            # Stable sort, primary key = time, secondary = tenant id
            # (the concatenation above is already tenant-major, so the
            # tenant key only has to break exact time ties).
            order = np.lexsort((tenants, times))
            yield times[order], tenants[order]
        if not pending:
            return
