"""The NIC: the per-host root object of the verbs API.

Owns the host's memory, the key tables, and the factories for PDs, CQs
and QPs.  One NIC per fabric attachment (the paper's testbed has one
Mellanox MT27800 port per node).
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Optional

from repro.rdma.completion import CompletionQueue
from repro.rdma.constants import Access
from repro.rdma.memory import HostMemory, MemoryBlock, MemoryRegion, ProtectionDomain
from repro.rdma.queue_pair import QueuePair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdma.fabric import Attachment, Fabric


class NIC:
    """An RDMA device attached to the fabric under a unique host name."""

    def __init__(self, fabric: "Fabric", name: str, attachment: "Attachment") -> None:
        self.fabric = fabric
        self.env = fabric.env
        self.model = fabric.model
        self.name = name
        self.attachment = attachment
        self.memory = HostMemory()
        self._pd_handles = count(1)
        self._qp_numbers = count(1)
        self._key_source = count(1)
        self._mrs_by_rkey: dict[int, MemoryRegion] = {}
        self._cq_count = count(1)
        #: Connection manager is attached lazily by repro.rdma.cm.
        self.cm = None

    # -- verbs factories -------------------------------------------------

    def create_pd(self) -> ProtectionDomain:
        return ProtectionDomain(self, next(self._pd_handles))

    def create_cq(self, depth: int = 4_096, name: Optional[str] = None) -> CompletionQueue:
        cq = CompletionQueue(self.env, depth, name or f"{self.name}.cq{next(self._cq_count)}")
        cq.nic = self
        return cq

    def create_qp(
        self,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: Optional[CompletionQueue] = None,
        **kwargs,
    ) -> QueuePair:
        # Not `recv_cq or send_cq`: CQs define __len__, so an empty CQ is falsy.
        return QueuePair(
            self,
            next(self._qp_numbers),
            pd,
            send_cq,
            send_cq if recv_cq is None else recv_cq,
            **kwargs,
        )

    # -- memory -----------------------------------------------------------

    def alloc(self, size: int, *, virtual: bool = False) -> MemoryBlock:
        """Allocate page-aligned host memory on this node."""
        return self.memory.alloc(size, virtual=virtual)

    def register(self, block: MemoryBlock, access: Access = Access.LOCAL_WRITE, pd: Optional[ProtectionDomain] = None) -> MemoryRegion:
        """Convenience: register *block* in a (new) protection domain."""
        return (pd or self.create_pd()).register(block, access)

    def _new_mr(
        self,
        pd: ProtectionDomain,
        block: MemoryBlock,
        addr: int,
        length: int,
        access: Access,
    ) -> MemoryRegion:
        lkey = next(self._key_source)
        rkey = next(self._key_source)
        mr = MemoryRegion(pd, block, addr, length, access, lkey, rkey)
        self._mrs_by_rkey[rkey] = mr
        return mr

    def _drop_mr(self, mr: MemoryRegion) -> None:
        self._mrs_by_rkey.pop(mr.rkey, None)

    def lookup_rkey(self, rkey: int) -> Optional[MemoryRegion]:
        """Responder-side rkey validation (None = unknown key)."""
        mr = self._mrs_by_rkey.get(rkey)
        if mr is not None and not mr.valid:
            return None
        return mr

    def __repr__(self) -> str:
        return f"<NIC {self.name}>"
