"""Work requests: what gets posted to a queue pair.

A scatter-gather element names a window of a *local*, registered MR by
(mr, offset, length); remote windows are named by raw (addr, rkey) pairs
exactly as on the wire -- the responder, not the requester, validates
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.rdma.constants import ATOMIC_SIZE, Opcode
from repro.rdma.errors import RdmaError
from repro.rdma.memory import MemoryRegion

_wr_ids = count(1)


def next_wr_id() -> int:
    return next(_wr_ids)


@dataclass(slots=True, eq=False)
class sge:
    """Scatter-gather element over a local MR.

    Mutable so pooled work requests can be retargeted in place on the
    invocation fast path (identity hash/eq, like ``ibv_sge`` structs).
    """

    mr: MemoryRegion
    offset: int = 0
    length: Optional[int] = None

    @property
    def nbytes(self) -> int:
        return self.mr.length - self.offset if self.length is None else self.length

    @property
    def addr(self) -> int:
        return self.mr.addr + self.offset

    def validate(self) -> None:
        if self.offset < 0 or self.nbytes < 0:
            raise RdmaError(f"negative offset/length in {self!r}")
        if self.offset + self.nbytes > self.mr.length:
            raise RdmaError(
                f"sge [{self.offset}, +{self.nbytes}) exceeds MR length {self.mr.length}"
            )
        if not self.mr.valid:
            raise RdmaError("sge references a deregistered MR")


@dataclass(slots=True, eq=False)
class SendWR:
    """A send-queue work request (``ibv_send_wr``)."""

    opcode: Opcode
    local: Optional[sge] = None
    remote_addr: int = 0
    rkey: int = 0
    imm_data: Optional[int] = None
    #: Request a CQE on the send CQ when the WR completes.
    signaled: bool = True
    #: Copy payload into the WQE (only if it fits max_inline_data).
    inline: bool = False
    #: Atomic operands.
    compare_add: int = 0
    swap: int = 0
    wr_id: int = field(default_factory=next_wr_id)

    @property
    def nbytes(self) -> int:
        if self.opcode.is_atomic:
            return ATOMIC_SIZE
        return self.local.nbytes if self.local is not None else 0

    def validate(self, max_inline: int) -> None:
        if self.opcode.carries_immediate and self.imm_data is None:
            raise RdmaError(f"{self.opcode} requires imm_data")
        if self.opcode.needs_remote_key and self.remote_addr == 0:
            raise RdmaError(f"{self.opcode} requires remote_addr")
        if self.opcode.is_atomic:
            if self.local is None or self.local.nbytes < ATOMIC_SIZE:
                raise RdmaError("atomics require an 8-byte local result buffer")
            if self.remote_addr % ATOMIC_SIZE:
                raise RdmaError("atomic target must be 8-byte aligned")
        elif self.local is not None:
            self.local.validate()
        if self.inline:
            if self.opcode.is_atomic or self.opcode is Opcode.RDMA_READ:
                raise RdmaError(f"{self.opcode} cannot be inlined")
            if self.nbytes > max_inline:
                raise RdmaError(
                    f"inline payload of {self.nbytes} B exceeds max_inline_data={max_inline}"
                )


@dataclass(slots=True, eq=False)
class RecvWR:
    """A receive-queue work request (``ibv_recv_wr``)."""

    local: sge
    wr_id: int = field(default_factory=next_wr_id)

    def validate(self) -> None:
        self.local.validate()
