"""Connection management: the rdma_cm-style out-of-band handshake.

Establishing a reliable connection costs three control-message exchanges
(request, reply, ready-to-use) plus kernel/daemon processing on both
ends; with the defaults that is ~1 ms per connection, matching the
single-digit-millisecond connection steps in the paper's Fig. 9.  Once
established, data flows over the QPs with no CM involvement -- rFaaS
clients *cache* these connections across invocations, which is exactly
why leases beat per-invocation central scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Optional

from repro.rdma.device import NIC
from repro.rdma.errors import ConnectionRefused
from repro.rdma.queue_pair import QueuePair
from repro.sim.clock import us
from repro.sim.resources import Store

#: Per-hop CM processing (kernel cm daemon, event channel wakeups).
CM_PROCESSING_NS = us(150)
#: CM control messages ride a small-message datagram path.
CM_MESSAGE_BYTES = 256

_request_ids = count(1)


@dataclass
class ConnectionRequest:
    """An incoming connection visible to a listener."""

    src_nic: NIC
    src_qp: QueuePair
    private_data: Any
    request_id: int = field(default_factory=lambda: next(_request_ids))
    _response: Optional[Any] = None
    _decided: Any = None  # Event set by accept/reject


@dataclass
class ConnectionResult:
    """What the active side gets back from ``connect``."""

    qp: QueuePair
    private_data: Any


class ConnectionListener:
    """A passive endpoint accepting connections on (host, port)."""

    def __init__(self, manager: "ConnectionManager", port: int) -> None:
        self.manager = manager
        self.port = port
        self.incoming: Store = Store(manager.nic.env)
        self.closed = False

    def get_request(self):
        """Event yielding the next :class:`ConnectionRequest`."""
        return self.incoming.get()

    def accept(self, request: ConnectionRequest, qp: QueuePair, private_data: Any = None) -> None:
        """Accept with a local QP; completes the requester's connect."""
        QueuePair.connect_pair(request.src_qp, qp)
        request._response = ConnectionResult(qp=qp, private_data=private_data)
        request._decided.succeed(True)

    def reject(self, request: ConnectionRequest, reason: str = "rejected") -> None:
        request._response = reason
        request._decided.succeed(False)

    def close(self) -> None:
        self.closed = True
        self.manager._listeners.pop(self.port, None)


class ConnectionManager:
    """Per-NIC CM endpoint (attach with :func:`install_cm`)."""

    def __init__(self, nic: NIC) -> None:
        self.nic = nic
        self.env = nic.env
        self._listeners: dict[int, ConnectionListener] = {}
        nic.cm = self

    def listen(self, port: int) -> ConnectionListener:
        if port in self._listeners:
            raise ConnectionRefused(f"port {port} already in use on {self.nic.name}")
        listener = ConnectionListener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, dst_host: str, port: int, qp: QueuePair, private_data: Any = None):
        """Process generator: three-way handshake, returns ConnectionResult.

        Usage: ``result = yield from cm.connect("server", 9000, qp)``.
        Raises :class:`ConnectionRefused` if nobody listens or the
        listener rejects.
        """
        env = self.env
        fabric = self.nic.fabric

        # --- REQ: route the request to the destination CM.
        yield env.timeout(CM_PROCESSING_NS)
        yield from fabric.transfer(self.nic.name, dst_host, CM_MESSAGE_BYTES)

        dst_nic = fabric.nic(dst_host)
        dst_cm: Optional[ConnectionManager] = dst_nic.cm
        listener = dst_cm._listeners.get(port) if dst_cm is not None else None
        if listener is None or listener.closed:
            # REJ travels back before we can raise.
            yield from fabric.transfer(dst_host, self.nic.name, CM_MESSAGE_BYTES)
            raise ConnectionRefused(f"{dst_host}:{port} is not listening")

        request = ConnectionRequest(src_nic=self.nic, src_qp=qp, private_data=private_data)
        request._decided = env.event()
        yield env.timeout(CM_PROCESSING_NS)
        yield listener.incoming.put(request)

        # --- REP: wait for the passive side to accept/reject.
        accepted = yield request._decided
        yield env.timeout(CM_PROCESSING_NS)
        yield from fabric.transfer(dst_host, self.nic.name, CM_MESSAGE_BYTES)
        if not accepted:
            raise ConnectionRefused(f"{dst_host}:{port} rejected: {request._response}")

        # --- RTU: ready-to-use back to the passive side (not awaited there).
        yield from fabric.transfer(self.nic.name, dst_host, CM_MESSAGE_BYTES)
        return request._response


def install_cm(nic: NIC) -> ConnectionManager:
    """Attach a connection manager to *nic* (idempotent)."""
    return nic.cm if nic.cm is not None else ConnectionManager(nic)
