"""The switched fabric: attachment points and link contention.

Links are modelled as FCFS serialization queues with *cut-through*
semantics: a message occupies its source's egress link and its
destination's ingress link for ``serialization(size)`` each, but the two
occupancies overlap in time, so the uncontended one-way latency charges
serialization only once.  Contention (many workers hammering one client,
one client fanning out to many workers) emerges naturally from the queue
reservations -- this is what bounds Fig. 10's 1 MB scaling at the link
bandwidth, exactly as in the paper.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.rdma.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.rdma.device import NIC


@dataclass
class FaultModel:
    """Seeded transient-fault injection for the fabric.

    RC transport hides packet loss behind retransmission: a lost packet
    costs the requester a retransmission timeout, not data corruption.
    With probability ``probability`` a transfer eats one such timeout
    (occasionally two).  Deterministic per seed.
    """

    probability: float = 0.0
    #: RC retransmission timeout (RoCE default territory).
    retransmit_delay_ns: int = 500_000
    seed: int = 77

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError(f"probability must be in [0, 1), got {self.probability}")
        self._rng = np.random.default_rng(self.seed)
        self.faults_injected = 0

    def penalty_ns(self) -> int:
        """Extra delay for one transfer (0 almost always)."""
        if self.probability <= 0.0:
            return 0
        if self._rng.random() >= self.probability:
            return 0
        self.faults_injected += 1
        # A second consecutive loss is possible but rare.
        retries = 2 if self._rng.random() < self.probability else 1
        return retries * self.retransmit_delay_ns


class LinkQueue:
    """One direction of one host link: an analytic FCFS queue.

    ``reserve(size)`` books the next available serialization slot and
    returns (start, finish) in virtual time.  Because the simulation is
    single-threaded and reservations happen in event order, this models
    a work-conserving FIFO link without per-packet events.

    Busy intervals are recorded per reservation (they are ordered and
    non-overlapping by construction: each starts no earlier than the
    previous finish), so :meth:`utilization` can answer *windowed*
    queries exactly instead of dividing cumulative-from-zero busy time
    by an arbitrary window.
    """

    def __init__(self, env: "Environment", model: LatencyModel, name: str) -> None:
        self.env = env
        self.model = model
        self.name = name
        self._busy_until = 0
        self.bytes_carried = 0
        self.busy_time = 0
        # Parallel arrays of interval starts/finishes plus duration
        # prefix sums (``_prefix[i]`` = busy time of the first i
        # intervals); three int appends per reserve, O(log n) queries.
        self._starts: list[int] = []
        self._finishes: list[int] = []
        self._prefix: list[int] = [0]

    def reserve(self, size: int) -> tuple[int, int]:
        """Book *size* bytes of serialization starting no earlier than now."""
        start = max(self.env.now, self._busy_until)
        duration = self.model.serialization_ns(size)
        finish = start + duration
        self._busy_until = finish
        self.bytes_carried += size
        self.busy_time += duration
        self._starts.append(start)
        self._finishes.append(finish)
        self._prefix.append(self._prefix[-1] + duration)
        return start, finish

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def busy_before(self, t: int) -> int:
        """Busy time accumulated strictly within [0, t]."""
        # First interval finishing after t is the only one that can
        # straddle it; everything before is fully counted, everything
        # after starts at or beyond the straddler's finish.
        index = bisect_right(self._finishes, t)
        busy = self._prefix[index]
        if index < len(self._starts) and self._starts[index] < t:
            busy += t - self._starts[index]
        return busy

    def utilization(self, since: int = 0) -> float:
        """Fraction of [since, now] the link spent serializing.

        Counts only busy time that actually falls inside the window
        (reservations may extend beyond ``now``; the future part is
        excluded), so the result is always in [0, 1].
        """
        now = self.env.now
        window = now - since
        if window <= 0:
            return 0.0
        return (self.busy_before(now) - self.busy_before(since)) / window

    def __repr__(self) -> str:
        return f"<LinkQueue {self.name} busy_until={self._busy_until}>"


class Attachment:
    """A host's port on the fabric: egress + ingress link queues."""

    def __init__(self, env: "Environment", model: LatencyModel, name: str) -> None:
        self.name = name
        self.egress = LinkQueue(env, model, f"{name}.egress")
        self.ingress = LinkQueue(env, model, f"{name}.ingress")


class _Path:
    """Resolved (src, dst) route: bound link queues + fixed delays.

    Caching these per direction saves two dict lookups and a
    propagation computation per message on the data path.
    """

    __slots__ = ("loopback", "egress", "ingress", "propagation_ns")

    def __init__(
        self,
        loopback: bool,
        egress: Optional[LinkQueue],
        ingress: Optional[LinkQueue],
        propagation_ns: int,
    ) -> None:
        self.loopback = loopback
        self.egress = egress
        self.ingress = ingress
        self.propagation_ns = propagation_ns


class Fabric:
    """A single-switch RDMA network connecting named hosts."""

    def __init__(
        self,
        env: "Environment",
        model: Optional[LatencyModel] = None,
        faults: Optional[FaultModel] = None,
    ) -> None:
        self.env = env
        self.model = model or LatencyModel()
        self.faults = faults
        self._attachments: dict[str, Attachment] = {}
        self._nics: dict[str, "NIC"] = {}
        self._paths: dict[tuple[str, str], _Path] = {}

    def attach(self, name: str) -> "NIC":
        """Create and attach a NIC named *name* (names are unique)."""
        from repro.rdma.device import NIC  # local import breaks the cycle

        if name in self._attachments:
            raise ValueError(f"host {name!r} already attached")
        attachment = Attachment(self.env, self.model, name)
        self._attachments[name] = attachment
        nic = NIC(self, name, attachment)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> "NIC":
        return self._nics[name]

    def names(self) -> list[str]:
        return sorted(self._nics)

    def path(self, src: str, dst: str) -> _Path:
        """The cached route from *src* to *dst* (resolved once per pair)."""
        key = (src, dst)
        path = self._paths.get(key)
        if path is None:
            if src == dst:
                self._attachments[src]  # raise KeyError for unknown hosts
                path = _Path(True, None, None, 0)
            else:
                path = _Path(
                    False,
                    self._attachments[src].egress,
                    self._attachments[dst].ingress,
                    self.model.propagation_ns(),
                )
            self._paths[key] = path
        return path

    def transfer(self, src: str, dst: str, size: int):
        """Process generator: move *size* bytes from *src* to *dst*.

        Yields until the last byte has landed at the destination NIC.
        The caller layers NIC processing (tx/rx, DMA fetch) on top --
        including inline-send treatment, which changes NIC-side DMA
        cost (see :meth:`LatencyModel.one_way_ns`), never the wire.
        Loopback (src == dst) skips the wire entirely.
        """
        return self.transfer_path(self.path(src, dst), size)

    def transfer_path(self, path: _Path, size: int):
        """Like :meth:`transfer` but over a pre-resolved :class:`_Path`.

        Data-path callers (one per work request) resolve the path once
        per connection and reuse it here.  The fault-penalty draw stays
        first so RNG consumption order matches the uncached code.
        """
        env = self.env
        if self.faults is not None:
            penalty = self.faults.penalty_ns()
            if penalty:
                # The requester sits out the retransmission timeout.
                yield env.timeout(penalty)
        if path.loopback:
            # NIC-internal loopback: serialization only, no propagation.
            yield env.timeout(self.model.serialization_ns(size) // 2)
            return

        _, egress_done = path.egress.reserve(size)
        # Cut-through: the head of the message reaches the destination
        # after propagation; the tail arrives when the slower of the two
        # links has clocked all bytes through.
        head_arrival = egress_done - self.model.serialization_ns(size) + path.propagation_ns
        if head_arrival > env.now:
            yield env.timeout(head_arrival - env.now)
        _, ingress_done = path.ingress.reserve(size)
        if ingress_done > env.now:
            yield env.timeout(ingress_done - env.now)
