"""Host memory, registration, and lkey/rkey protection.

Each simulated host owns a :class:`HostMemory`: a flat virtual address
space from which page-aligned blocks are allocated.  A block carries
either a real ``bytearray`` backing (the default -- payload bytes really
move across the fabric) or a *virtual* backing that tracks only sizes,
used by multi-hundred-megabyte bandwidth sweeps where materializing the
bytes would dominate wall-clock time without changing any simulated
result.

Remote access goes through :class:`MemoryRegion` keys exactly as on
hardware: the responder looks the rkey up in its NIC table, checks
bounds and access flags, and a violation produces a remote-access-error
completion at the requester, not a Python exception.
"""

from __future__ import annotations

from typing import Optional, Union

from repro import perf
from repro.rdma.constants import Access
from repro.rdma.errors import MemoryRegistrationError, OutOfMemory

#: rFaaS aligns buffers to pages for best RDMA bandwidth [Kalia et al.].
PAGE_SIZE = 4_096

BytesLike = Union[bytes, bytearray, memoryview]


#: Virtual blocks keep this many real bytes at their start, so small
#: control structures (e.g. rFaaS's 12-byte result header) survive even
#: when the bulk payload is size-only.
SHADOW_BYTES = 256


class MemoryBlock:
    """A contiguous allocation inside a :class:`HostMemory`."""

    __slots__ = ("base", "size", "data", "owner", "shadow")

    def __init__(self, base: int, size: int, data: Optional[bytearray], owner: "HostMemory") -> None:
        self.base = base
        self.size = size
        #: Real backing bytes, or None for a virtual (size-only) block.
        self.data = data
        #: Real prefix of a virtual block (None for real blocks).
        self.shadow: Optional[bytearray] = (
            bytearray(min(size, SHADOW_BYTES)) if data is None else None
        )
        self.owner = owner

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int) -> bool:
        return self.base <= addr and addr + length <= self.end

    def write(self, addr: int, payload: BytesLike) -> None:
        """Copy *payload* to absolute address *addr* (must be in range).

        Virtual blocks persist only the part overlapping their shadow
        prefix; the rest is accounted but not stored.
        """
        length = len(payload)
        if not self.contains(addr, length):
            raise MemoryRegistrationError(
                f"write [{addr}, {addr + length}) outside block [{self.base}, {self.end})"
            )
        offset = addr - self.base
        if self.data is not None:
            if type(payload) is memoryview and payload.obj is self.data:
                # Self-copy within one block (e.g. loopback RDMA between
                # two windows of the same allocation): slice assignment
                # over overlapping ranges of the same bytearray is not
                # well-defined, so materialize the source first.
                payload = bytes(payload)
            self.data[offset : offset + length] = payload
            if perf.enabled:
                perf.counters.bytes_copied += length
        elif self.shadow is not None and offset < len(self.shadow):
            keep = min(length, len(self.shadow) - offset)
            self.shadow[offset : offset + keep] = bytes(payload[:keep])

    def read(self, addr: int, length: int) -> bytes:
        """Read *length* bytes at absolute address *addr*.

        Virtual blocks return their shadow prefix followed by zeros.
        """
        if not self.contains(addr, length):
            raise MemoryRegistrationError(
                f"read [{addr}, {addr + length}) outside block [{self.base}, {self.end})"
            )
        offset = addr - self.base
        if self.data is None:
            out = bytearray(length)
            if self.shadow is not None and offset < len(self.shadow):
                keep = min(length, len(self.shadow) - offset)
                out[:keep] = self.shadow[offset : offset + keep]
            return bytes(out)
        return bytes(self.data[offset : offset + length])

    def view(self, addr: int, length: int) -> memoryview:
        """Zero-copy read-only view of *length* bytes at *addr*.

        Only valid for real blocks (virtual blocks have no bytes to
        reference; callers fall back to :meth:`read` / shadow capture).
        The view aliases live memory: it observes later writes, which is
        exactly the verbs contract -- a posted buffer must stay stable
        until the send completes.
        """
        if self.data is None:
            raise MemoryRegistrationError("cannot take a view of a virtual block")
        if not self.contains(addr, length):
            raise MemoryRegistrationError(
                f"view [{addr}, {addr + length}) outside block [{self.base}, {self.end})"
            )
        offset = addr - self.base
        if perf.enabled:
            perf.counters.bytes_referenced += length
        return memoryview(self.data)[offset : offset + length].toreadonly()

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & (2**64 - 1)).to_bytes(8, "little"))

    def __repr__(self) -> str:
        kind = "virtual" if self.is_virtual else "real"
        return f"<MemoryBlock base={self.base:#x} size={self.size} {kind}>"


class HostMemory:
    """Per-host address space with a bump allocator.

    Addresses are never reused within a run (a bump pointer), which both
    keeps the allocator trivial and makes use-after-free show up as a
    protection error rather than silent corruption.
    """

    def __init__(self, capacity: int = 1 << 40, base: int = 0x10_000) -> None:
        self.capacity = capacity
        self._next = base
        self._blocks: list[MemoryBlock] = []
        self.bytes_allocated = 0

    def alloc(self, size: int, *, align: int = PAGE_SIZE, virtual: bool = False) -> MemoryBlock:
        """Allocate *size* bytes, page-aligned by default."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a positive power of two, got {align}")
        base = (self._next + align - 1) & ~(align - 1)
        if base + size - 0x10_000 > self.capacity:
            raise OutOfMemory(f"cannot allocate {size} bytes (capacity {self.capacity})")
        self._next = base + size
        data = None if virtual else bytearray(size)
        block = MemoryBlock(base, size, data, self)
        self._blocks.append(block)
        self.bytes_allocated += size
        return block

    def free(self, block: MemoryBlock) -> None:
        """Release a block (addresses are not recycled)."""
        try:
            self._blocks.remove(block)
        except ValueError:
            raise MemoryRegistrationError("block does not belong to this memory") from None
        self.bytes_allocated -= block.size

    def block_at(self, addr: int) -> Optional[MemoryBlock]:
        """The live block containing *addr*, if any."""
        for block in self._blocks:
            if block.base <= addr < block.end:
                return block
        return None


class MemoryRegion:
    """A registered window over a block, addressable via lkey/rkey."""

    __slots__ = ("pd", "block", "addr", "length", "access", "lkey", "rkey", "_revoked")

    def __init__(
        self,
        pd: "ProtectionDomain",
        block: MemoryBlock,
        addr: int,
        length: int,
        access: Access,
        lkey: int,
        rkey: int,
    ) -> None:
        self.pd = pd
        self.block = block
        self.addr = addr
        self.length = length
        self.access = access
        self.lkey = lkey
        self.rkey = rkey
        self._revoked = False

    @property
    def end(self) -> int:
        return self.addr + self.length

    @property
    def valid(self) -> bool:
        return not self._revoked

    def allows(self, access: Access) -> bool:
        return bool(self.access & access) and not self._revoked

    def in_bounds(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end

    def write(self, offset: int, payload: BytesLike) -> None:
        """Local write at *offset* within the region."""
        self.block.write(self.addr + offset, payload)

    def read(self, offset: int, length: int) -> bytes:
        """Local read at *offset* within the region."""
        return self.block.read(self.addr + offset, length)

    def view(self, offset: int, length: int) -> memoryview:
        """Zero-copy read-only view at *offset* (real blocks only)."""
        return self.block.view(self.addr + offset, length)

    def deregister(self) -> None:
        self._revoked = True
        self.pd.nic._drop_mr(self)

    def __repr__(self) -> str:
        return (
            f"<MemoryRegion addr={self.addr:#x} len={self.length} "
            f"lkey={self.lkey} rkey={self.rkey} access={self.access}>"
        )


class ProtectionDomain:
    """Groups MRs and QPs; keys are only valid within their NIC's tables."""

    def __init__(self, nic: "NIC", handle: int) -> None:  # noqa: F821 - forward ref
        self.nic = nic
        self.handle = handle

    def register(
        self,
        block: MemoryBlock,
        access: Access = Access.LOCAL_WRITE,
        *,
        addr: Optional[int] = None,
        length: Optional[int] = None,
    ) -> MemoryRegion:
        """Register (a window of) *block* and return the MR with fresh keys."""
        addr = block.base if addr is None else addr
        length = block.size if length is None else length
        if length <= 0:
            raise MemoryRegistrationError("registration length must be positive")
        if not block.contains(addr, length):
            raise MemoryRegistrationError(
                f"registration [{addr:#x}, +{length}) not contained in {block!r}"
            )
        return self.nic._new_mr(self, block, addr, length, access)
