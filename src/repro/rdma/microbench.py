"""Simulated perftest tools: ``ib_write_lat`` and ``ib_write_bw``.

These are the RDMA baselines the paper measures rFaaS overhead against
(Sec. V-A).  They run the exact ping-pong / streaming patterns of the
real tools on the simulated fabric and report virtual-time results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdma.constants import Access, Opcode
from repro.rdma.fabric import Fabric
from repro.rdma.queue_pair import QueuePair
from repro.rdma.verbs import RecvWR, SendWR, sge
from repro.sim.core import Environment


@dataclass
class LatencyResult:
    size: int
    iterations: int
    rtts_ns: list[int]

    @property
    def median_ns(self) -> float:
        ordered = sorted(self.rtts_ns)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[mid])
        return (ordered[mid - 1] + ordered[mid]) / 2


@dataclass
class BandwidthResult:
    size: int
    iterations: int
    elapsed_ns: int

    @property
    def bytes_total(self) -> int:
        return self.size * self.iterations

    @property
    def mib_per_sec(self) -> float:
        return self.bytes_total / (1024 * 1024) / (self.elapsed_ns / 1e9)


def _make_pair(env: Environment, fabric: Fabric, size: int):
    """Two hosts with registered ping/pong buffers and a connected QP pair."""
    nic_a, nic_b = fabric.attach("lat-a"), fabric.attach("lat-b")
    setup = {}
    for tag, nic in (("a", nic_a), ("b", nic_b)):
        pd = nic.create_pd()
        block = nic.alloc(max(size, 8))
        mr = pd.register(block, Access.rw())
        cq = nic.create_cq(name=f"{tag}")
        qp = nic.create_qp(pd, cq)
        setup[tag] = (nic, mr, cq, qp)
    QueuePair.connect_pair(setup["a"][3], setup["b"][3])
    return setup["a"], setup["b"]


def ib_write_lat(size: int, iterations: int = 100, fabric: Fabric | None = None) -> LatencyResult:
    """Ping-pong of RDMA WRITE_WITH_IMM; returns per-iteration RTTs.

    Mirrors ``ib_write_lat`` run with CPU pinning and busy polling: each
    side writes *size* bytes to its peer and spins on its receive CQ.
    """
    env = fabric.env if fabric is not None else Environment()
    fabric = fabric or Fabric(env)
    (nic_a, mr_a, cq_a, qp_a), (nic_b, mr_b, cq_b, qp_b) = _make_pair(env, fabric, size)

    inline_ok = size <= qp_a.max_inline_data
    rtts: list[int] = []

    def side(qp, mr, cq, initiator: bool):
        for _ in range(iterations):
            qp.post_recv(RecvWR(local=sge(mr)))
            if initiator:
                start = env.now
                qp.post_send(
                    SendWR(
                        opcode=Opcode.RDMA_WRITE_WITH_IMM,
                        local=sge(mr, 0, size),
                        remote_addr=_remote_mr(qp).addr,
                        rkey=_remote_mr(qp).rkey,
                        imm_data=1,
                        inline=inline_ok,
                        signaled=False,
                    )
                )
                yield from cq.busy_poll()
                rtts.append(env.now - start)
            else:
                yield from cq.busy_poll()
                qp.post_send(
                    SendWR(
                        opcode=Opcode.RDMA_WRITE_WITH_IMM,
                        local=sge(mr, 0, size),
                        remote_addr=_remote_mr(qp).addr,
                        rkey=_remote_mr(qp).rkey,
                        imm_data=1,
                        inline=inline_ok,
                        signaled=False,
                    )
                )

    remote_mrs = {qp_a: mr_b, qp_b: mr_a}

    def _remote_mr(qp):
        return remote_mrs[qp]

    env.process(side(qp_b, mr_b, cq_b, initiator=False))
    env.process(side(qp_a, mr_a, cq_a, initiator=True))
    env.run()
    return LatencyResult(size=size, iterations=iterations, rtts_ns=rtts)


def ib_write_bw(size: int, iterations: int = 200, window: int = 64) -> BandwidthResult:
    """Streaming RDMA WRITEs with a posting window; measures goodput."""
    env = Environment()
    fabric = Fabric(env)
    (nic_a, mr_a, cq_a, qp_a), (nic_b, mr_b, cq_b, qp_b) = _make_pair(env, fabric, size)

    done = env.event()
    state = {"started": None, "finished": None}

    def sender():
        state["started"] = env.now
        outstanding = 0
        posted = 0
        completed = 0
        while completed < iterations:
            while posted < iterations and outstanding < window:
                qp_a.post_send(
                    SendWR(
                        opcode=Opcode.RDMA_WRITE,
                        local=sge(mr_a, 0, size),
                        remote_addr=mr_b.addr,
                        rkey=mr_b.rkey,
                        signaled=True,
                    )
                )
                posted += 1
                outstanding += 1
            wcs = yield from cq_a.busy_poll(max_entries=window)
            completed += len(wcs)
            outstanding -= len(wcs)
        state["finished"] = env.now
        done.succeed()

    env.process(sender())
    env.run(until=done)
    return BandwidthResult(size=size, iterations=iterations, elapsed_ns=state["finished"] - state["started"])
