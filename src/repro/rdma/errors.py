"""Exception hierarchy for the RDMA substrate.

Most *data-path* failures do not raise: as on real hardware they surface
as error completions and QP state transitions.  Exceptions are reserved
for programming errors (bad arguments, invalid state for a verb call)
and connection management.
"""

from __future__ import annotations


class RdmaError(Exception):
    """Base class for all RDMA substrate errors."""


class MemoryRegistrationError(RdmaError):
    """Invalid memory registration (bad bounds, unknown block, ...)."""


class QPStateError(RdmaError):
    """A verb was called on a QP in the wrong state."""


class RemoteAccessError(RdmaError):
    """Local-side detection of an invalid remote access description."""


class ConnectionRefused(RdmaError):
    """The connection manager rejected or could not route a connection."""


class OutOfMemory(RdmaError):
    """The host memory allocator is exhausted."""
