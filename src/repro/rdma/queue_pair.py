"""Reliable-connection queue pairs: the RDMA data path.

The requester side initiates work requests in order (the NIC send
pipeline is sequential per QP, which preserves RC ordering on the FIFO
fabric links) but deliveries pipeline, so back-to-back large writes
saturate the link.  The responder side validates rkeys/bounds/access
and either executes the operation or NAKs, driving the requester QP into
the error state exactly as hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.rdma.constants import ATOMIC_SIZE, Access, Opcode, QPState, WCOpcode, WCStatus
from repro.rdma.completion import CompletionQueue, WorkCompletion
from repro.rdma.errors import QPStateError, RdmaError
from repro.rdma.memory import SHADOW_BYTES
from repro.rdma.verbs import RecvWR, SendWR
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdma.device import NIC
    from repro.rdma.fabric import _Path
    from repro.rdma.memory import ProtectionDomain


@dataclass(slots=True)
class _WireOp:
    """What actually crosses the fabric for one work request."""

    wr: SendWR
    src_qp: "QueuePair"
    #: Payload bytes -- a zero-copy memoryview over the (stable, per the
    #: verbs contract) source buffer -- or None when the source is virtual.
    payload: Optional[Union[bytes, memoryview]]
    nbytes: int
    inline: bool
    #: Shadow prefix of a virtual source (control headers survive).
    prefix: Optional[bytes] = None


_SEND_OPCODE_TO_WC = {
    Opcode.SEND: WCOpcode.SEND,
    Opcode.SEND_WITH_IMM: WCOpcode.SEND,
    Opcode.RDMA_WRITE: WCOpcode.RDMA_WRITE,
    Opcode.RDMA_WRITE_WITH_IMM: WCOpcode.RDMA_WRITE,
    Opcode.RDMA_READ: WCOpcode.RDMA_READ,
    Opcode.ATOMIC_FETCH_ADD: WCOpcode.FETCH_ADD,
    Opcode.ATOMIC_CMP_SWP: WCOpcode.COMP_SWAP,
}


class QueuePair:
    """One endpoint of a reliable connection."""

    def __init__(
        self,
        nic: "NIC",
        qpn: int,
        pd: "ProtectionDomain",
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        *,
        max_inline_data: Optional[int] = None,
        rnr_retry: int = 7,
        max_send_wr: int = 1_024,
    ) -> None:
        self.nic = nic
        self.env = nic.env
        self.qpn = qpn
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.state = QPState.RESET
        self.max_inline_data = (
            nic.model.max_inline_data if max_inline_data is None else max_inline_data
        )
        self.rnr_retry = rnr_retry
        self.max_send_wr = max_send_wr
        self.remote: Optional["QueuePair"] = None
        #: Cached fabric routes, resolved per connected peer.
        self._cached_remote: Optional["QueuePair"] = None
        self._path_fwd: Optional["_Path"] = None
        self._path_rev: Optional["_Path"] = None
        self._recv_queue: list[RecvWR] = []
        self._send_fifo = Store(self.env)
        self._send_loop_proc = self.env.process(self._send_loop(), name=f"qp{qpn}-send")
        #: Statistics.
        self.bytes_sent = 0
        self.ops_posted = 0

    # -- state management ------------------------------------------------

    def modify(self, state: QPState) -> None:
        """Transition the QP (simplified legal-path check)."""
        legal = {
            QPState.RESET: {QPState.INIT, QPState.ERR},
            QPState.INIT: {QPState.RTR, QPState.ERR, QPState.RESET},
            QPState.RTR: {QPState.RTS, QPState.ERR, QPState.RESET},
            QPState.RTS: {QPState.ERR, QPState.RESET},
            QPState.ERR: {QPState.RESET},
        }
        if state not in legal[self.state]:
            raise QPStateError(f"illegal transition {self.state} -> {state}")
        self.state = state
        if state is QPState.ERR:
            self._flush()
        if state is QPState.RESET:
            self.remote = None

    @staticmethod
    def connect_pair(a: "QueuePair", b: "QueuePair") -> None:
        """Out-of-band connection setup (what the CM handshake performs)."""
        for qp in (a, b):
            if qp.state is not QPState.RESET:
                raise QPStateError(f"QP {qp.qpn} not in RESET")
        a.remote, b.remote = b, a
        for qp in (a, b):
            qp.modify(QPState.INIT)
            qp.modify(QPState.RTR)
            qp.modify(QPState.RTS)

    @property
    def connected(self) -> bool:
        return self.remote is not None and self.state is QPState.RTS

    def _flush(self) -> None:
        """Flush posted receives with WR_FLUSH_ERR, as hardware does."""
        flushed, self._recv_queue = self._recv_queue, []
        for wr in flushed:
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    opcode=WCOpcode.RECV,
                    status=WCStatus.WR_FLUSH_ERR,
                    qp_num=self.qpn,
                )
            )

    # -- posting -----------------------------------------------------------

    def post_recv(self, wr: RecvWR) -> None:
        # Real verbs requires INIT+; we also accept RESET because the
        # simulated CM moves RESET->RTS atomically at accept time and
        # servers pre-post receives before the client connects.
        if self.state is QPState.ERR:
            raise QPStateError(f"cannot post receive in state {self.state}")
        wr.validate()
        self._recv_queue.append(wr)

    def post_send(self, wr: SendWR) -> None:
        """Queue a work request on the NIC's per-QP send pipeline."""
        if self.state is not QPState.RTS:
            raise QPStateError(f"cannot post send in state {self.state}")
        if self.remote is None:
            raise QPStateError("QP has no connected peer")
        wr.validate(self.max_inline_data)
        if wr.opcode.is_atomic and wr.local is not None and wr.local.mr.block.is_virtual:
            raise RdmaError("atomic result buffers must be real memory")
        if len(self._send_fifo.items) >= self.max_send_wr:
            # ibv_post_send returns ENOMEM when the SQ is full.
            raise RdmaError(f"send queue full (max_send_wr={self.max_send_wr})")
        self.ops_posted += 1
        self._send_fifo.put(wr)

    # -- requester pipeline --------------------------------------------------

    def _send_loop(self):
        """Sequential WR initiation; deliveries run concurrently."""
        env = self.env
        model = self.nic.model
        while True:
            wr: SendWR = yield self._send_fifo.get()
            if self.state is not QPState.RTS:
                self._complete_send(wr, WCStatus.WR_FLUSH_ERR)
                continue

            inline = wr.inline and wr.nbytes <= self.max_inline_data
            # NIC processing; non-inline payloads need a PCIe DMA fetch.
            cost = model.nic_tx_ns
            if not inline and wr.nbytes > 0 and wr.opcode is not Opcode.RDMA_READ:
                cost += model.pcie_dma_fetch_ns
            yield env.timeout(cost)

            payload: Optional[bytes] = None
            prefix: Optional[bytes] = None
            nbytes = wr.nbytes
            if wr.opcode.is_atomic:
                nbytes = ATOMIC_SIZE
            elif wr.opcode is not Opcode.RDMA_READ and wr.local is not None and nbytes > 0:
                if not wr.local.mr.block.is_virtual:
                    # Zero-copy: reference the source buffer instead of
                    # materializing it.  The verbs contract (the buffer
                    # is stable until the send completes) makes this
                    # equivalent to the DMA-fetch-time copy it replaces.
                    payload = wr.local.mr.view(wr.local.offset, nbytes)
                else:
                    prefix = wr.local.mr.read(wr.local.offset, min(nbytes, SHADOW_BYTES))

            op = _WireOp(
                wr=wr, src_qp=self, payload=payload, nbytes=nbytes, inline=inline, prefix=prefix
            )
            self.bytes_sent += nbytes
            env.process(self._deliver(op), name=f"qp{self.qpn}-wr{wr.wr_id}")

    def _deliver(self, op: _WireOp):
        """One WR's life after initiation: wire, responder, completion."""
        env = self.env
        model = self.nic.model
        remote = self.remote
        if remote is None:  # connection torn down mid-flight
            self._complete_send(op.wr, WCStatus.WR_FLUSH_ERR)
            return

        if remote is not self._cached_remote:
            # Resolve both directions once per peer; reconnecting to a
            # different QP (identity check) re-resolves.
            fabric = self.nic.fabric
            self._path_fwd = fabric.path(self.nic.name, remote.nic.name)
            self._path_rev = fabric.path(remote.nic.name, self.nic.name)
            self._cached_remote = remote

        wire_size = op.nbytes if op.wr.opcode is not Opcode.RDMA_READ else 0
        yield from self.nic.fabric.transfer_path(self._path_fwd, wire_size)
        yield env.timeout(model.nic_rx_ns)

        if remote.state is not QPState.RTS:
            self._fail_send(op.wr, WCStatus.RETRY_EXC_ERR)
            return

        status = yield from self._respond(op, remote)
        if status is not WCStatus.SUCCESS:
            self._fail_send(op.wr, status)
            return

        if op.wr.opcode.has_response_data:
            # READ/atomic response carries data back to the requester.
            resp_size = op.nbytes if op.wr.opcode is Opcode.RDMA_READ else ATOMIC_SIZE
            yield from self.nic.fabric.transfer_path(self._path_rev, resp_size)
            yield env.timeout(model.nic_rx_ns)
            self._complete_send(op.wr, WCStatus.SUCCESS)
        else:
            # Transport ACK (does not occupy data links).
            yield env.timeout(model.ack_delay_ns)
            self._complete_send(op.wr, WCStatus.SUCCESS)

    # -- responder ------------------------------------------------------------

    def _respond(self, op: _WireOp, remote: "QueuePair"):
        """Execute *op* at the responder; returns the requester status."""
        env = self.env
        model = self.nic.model
        wr = op.wr

        if wr.opcode.needs_remote_key:
            mr = remote.nic.lookup_rkey(wr.rkey)
            needed = {
                Opcode.RDMA_WRITE: Access.REMOTE_WRITE,
                Opcode.RDMA_WRITE_WITH_IMM: Access.REMOTE_WRITE,
                Opcode.RDMA_READ: Access.REMOTE_READ,
                Opcode.ATOMIC_FETCH_ADD: Access.REMOTE_ATOMIC,
                Opcode.ATOMIC_CMP_SWP: Access.REMOTE_ATOMIC,
            }[wr.opcode]
            length = op.nbytes
            if mr is None or not mr.allows(needed) or not mr.in_bounds(wr.remote_addr, length):
                remote.modify(QPState.ERR)
                return WCStatus.REM_ACCESS_ERR

        if wr.opcode.consumes_recv_wr:
            recv_wr = yield from remote._claim_recv_wr(self.rnr_retry)
            if recv_wr is None:
                return WCStatus.RNR_RETRY_EXC_ERR
            if wr.opcode in (Opcode.SEND, Opcode.SEND_WITH_IMM):
                if op.nbytes > recv_wr.local.nbytes:
                    remote.recv_cq.push(
                        WorkCompletion(
                            wr_id=recv_wr.wr_id,
                            opcode=WCOpcode.RECV,
                            status=WCStatus.LOC_LEN_ERR,
                            qp_num=remote.qpn,
                        )
                    )
                    remote.modify(QPState.ERR)
                    return WCStatus.REM_INV_REQ_ERR
                data = op.payload if op.payload is not None else op.prefix
                if data is not None:
                    recv_wr.local.mr.write(recv_wr.local.offset, data)
                wc_opcode = WCOpcode.RECV
            else:  # RDMA_WRITE_WITH_IMM: data goes to the rkey target
                self._store_remote(op, wr, remote)
                wc_opcode = WCOpcode.RECV_RDMA_WITH_IMM
            remote.recv_cq.push(
                WorkCompletion(
                    wr_id=recv_wr.wr_id,
                    opcode=wc_opcode,
                    byte_len=op.nbytes,
                    imm_data=wr.imm_data,
                    qp_num=remote.qpn,
                )
            )
            return WCStatus.SUCCESS

        if wr.opcode is Opcode.RDMA_WRITE:
            self._store_remote(op, wr, remote)
            return WCStatus.SUCCESS

        if wr.opcode is Opcode.RDMA_READ:
            mr = remote.nic.lookup_rkey(wr.rkey)
            assert mr is not None  # validated above
            if not mr.block.is_virtual and wr.local is not None and not wr.local.mr.block.is_virtual:
                # Zero-copy: the write happens at the same instant the
                # view is taken, so aliasing is safe (and a same-block
                # overlap is handled inside MemoryBlock.write).
                wr.local.mr.write(wr.local.offset, mr.block.view(wr.remote_addr, op.nbytes))
            return WCStatus.SUCCESS

        if wr.opcode.is_atomic:
            yield env.timeout(model.atomic_exec_ns)
            mr = remote.nic.lookup_rkey(wr.rkey)
            assert mr is not None
            if mr.block.is_virtual:
                remote.modify(QPState.ERR)
                return WCStatus.REM_ACCESS_ERR
            old = mr.block.read_u64(wr.remote_addr)
            if wr.opcode is Opcode.ATOMIC_FETCH_ADD:
                mr.block.write_u64(wr.remote_addr, old + wr.compare_add)
            else:  # compare-and-swap
                if old == wr.compare_add:
                    mr.block.write_u64(wr.remote_addr, wr.swap)
            if wr.local is not None:
                wr.local.mr.write(wr.local.offset, old.to_bytes(8, "little"))
            return WCStatus.SUCCESS

        raise RdmaError(f"unhandled opcode {wr.opcode}")  # pragma: no cover

    @staticmethod
    def _store_remote(op: _WireOp, wr: SendWR, remote: "QueuePair") -> None:
        mr = remote.nic.lookup_rkey(wr.rkey)
        assert mr is not None
        data = op.payload if op.payload is not None else op.prefix
        if data is not None:
            mr.block.write(wr.remote_addr, data)

    def _claim_recv_wr(self, retries: int):
        """Pop a posted receive, honoring RNR retry semantics."""
        for attempt in range(retries + 1):
            if self._recv_queue:
                return self._recv_queue.pop(0)
            if attempt < retries:
                yield self.env.timeout(self.nic.model.rnr_timer_ns)
        return None

    # -- completions -----------------------------------------------------------

    def _complete_send(self, wr: SendWR, status: WCStatus) -> None:
        if not wr.signaled and status is WCStatus.SUCCESS:
            return
        self.send_cq.push(
            WorkCompletion(
                wr_id=wr.wr_id,
                opcode=_SEND_OPCODE_TO_WC[wr.opcode],
                status=status,
                byte_len=wr.nbytes,
                qp_num=self.qpn,
            )
        )

    def _fail_send(self, wr: SendWR, status: WCStatus) -> None:
        """Error completion + requester QP to ERR (flushing receives)."""
        self._complete_send(wr, status)
        if self.state is not QPState.ERR:
            self.modify(QPState.ERR)

    def __repr__(self) -> str:
        return f"<QueuePair qpn={self.qpn} state={self.state.value} nic={self.nic.name}>"
