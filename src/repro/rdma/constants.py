"""Enumerations mirroring the ibverbs constants rFaaS relies on."""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Send work-request opcodes (``ibv_wr_opcode``)."""

    SEND = "send"
    SEND_WITH_IMM = "send_with_imm"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_WITH_IMM = "rdma_write_with_imm"
    RDMA_READ = "rdma_read"
    ATOMIC_FETCH_ADD = "atomic_fetch_add"
    ATOMIC_CMP_SWP = "atomic_cmp_swp"

    @property
    def consumes_recv_wr(self) -> bool:
        """Does the responder consume a posted receive for this opcode?"""
        return self in (Opcode.SEND, Opcode.SEND_WITH_IMM, Opcode.RDMA_WRITE_WITH_IMM)

    @property
    def carries_immediate(self) -> bool:
        return self in (Opcode.SEND_WITH_IMM, Opcode.RDMA_WRITE_WITH_IMM)

    @property
    def needs_remote_key(self) -> bool:
        return self in (
            Opcode.RDMA_WRITE,
            Opcode.RDMA_WRITE_WITH_IMM,
            Opcode.RDMA_READ,
            Opcode.ATOMIC_FETCH_ADD,
            Opcode.ATOMIC_CMP_SWP,
        )

    @property
    def is_atomic(self) -> bool:
        return self in (Opcode.ATOMIC_FETCH_ADD, Opcode.ATOMIC_CMP_SWP)

    @property
    def has_response_data(self) -> bool:
        """Does the responder send payload back (READ result, atomic old value)?"""
        return self is Opcode.RDMA_READ or self.is_atomic


class WCOpcode(enum.Enum):
    """Completion opcodes (``ibv_wc_opcode``)."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"
    FETCH_ADD = "fetch_add"
    COMP_SWAP = "comp_swap"
    RECV = "recv"
    RECV_RDMA_WITH_IMM = "recv_rdma_with_imm"


class WCStatus(enum.Enum):
    """Completion status (``ibv_wc_status``)."""

    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    LOC_PROT_ERR = "local_protection_error"
    REM_ACCESS_ERR = "remote_access_error"
    REM_INV_REQ_ERR = "remote_invalid_request"
    RNR_RETRY_EXC_ERR = "rnr_retry_exceeded"
    WR_FLUSH_ERR = "work_request_flushed"
    RETRY_EXC_ERR = "transport_retry_exceeded"


class QPState(enum.Enum):
    """Queue-pair state machine (``ibv_qp_state``)."""

    RESET = "reset"
    INIT = "init"
    RTR = "ready_to_receive"
    RTS = "ready_to_send"
    ERR = "error"


class Access(enum.Flag):
    """Memory-region access flags (``ibv_access_flags``)."""

    NONE = 0
    LOCAL_WRITE = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_ATOMIC = enum.auto()

    @classmethod
    def rw(cls) -> "Access":
        return cls.LOCAL_WRITE | cls.REMOTE_WRITE | cls.REMOTE_READ

    @classmethod
    def all(cls) -> "Access":
        return cls.LOCAL_WRITE | cls.REMOTE_WRITE | cls.REMOTE_READ | cls.REMOTE_ATOMIC


#: Atomic operations act on exactly 8 bytes, 8-byte aligned.
ATOMIC_SIZE = 8

#: Default MTU-like cap on a single work request payload (2 GiB, i.e. no
#: practical cap -- RC messages may span many MTUs).
MAX_MESSAGE_SIZE = 1 << 31
