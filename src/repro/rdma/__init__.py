"""Simulated ibverbs: a faithful model of RDMA semantics on the DES kernel.

Implements the subset of the verbs API that rFaaS uses, with the
semantics that make the paper's design work:

* reliable-connection queue pairs with the RESET/INIT/RTR/RTS/ERR state
  machine,
* memory regions with lkey/rkey protection and access-flag checks
  (remote access faults move the QP to ERR and flush outstanding work),
* RDMA WRITE / WRITE_WITH_IMM / SEND / RECV / READ and the two atomics
  (fetch-and-add, compare-and-swap),
* message inlining below ``max_inline_data`` (the source of the paper's
  630 ns anomaly at 128 B payloads),
* completion queues consumed either by busy polling (hot invocations)
  or via a blocking completion channel (warm invocations, cheaper CPU,
  ~4.3 µs extra latency),
* a switched fabric whose links are FCFS serialization queues, so
  parallel workers genuinely contend for the 100 Gb/s link (Fig. 10).

The latency model is calibrated so a simulated ``ib_write_lat``
ping-pong measures the paper's 3.69 µs RTT and 11 686.4 MiB/s bandwidth.
"""

from repro.rdma.constants import Access, Opcode, QPState, WCOpcode, WCStatus
from repro.rdma.errors import (
    ConnectionRefused,
    MemoryRegistrationError,
    QPStateError,
    RdmaError,
    RemoteAccessError,
)
from repro.rdma.latency import LatencyModel
from repro.rdma.fabric import Fabric
from repro.rdma.memory import HostMemory, MemoryBlock, MemoryRegion, ProtectionDomain
from repro.rdma.completion import CompletionQueue, WorkCompletion
from repro.rdma.verbs import RecvWR, SendWR, sge
from repro.rdma.queue_pair import QueuePair
from repro.rdma.device import NIC
from repro.rdma.cm import ConnectionListener, ConnectionManager

__all__ = [
    "Access",
    "CompletionQueue",
    "ConnectionListener",
    "ConnectionManager",
    "ConnectionRefused",
    "Fabric",
    "HostMemory",
    "LatencyModel",
    "MemoryBlock",
    "MemoryRegion",
    "MemoryRegistrationError",
    "NIC",
    "Opcode",
    "ProtectionDomain",
    "QPState",
    "QPStateError",
    "QueuePair",
    "RdmaError",
    "RecvWR",
    "RemoteAccessError",
    "SendWR",
    "WCOpcode",
    "WCStatus",
    "WorkCompletion",
    "sge",
]
