"""The calibrated timing model of the RDMA fabric.

Every constant is named after the physical step it stands for, and the
defaults are chosen so that the *simulated* measurements match the
paper's testbed (Sec. V, "Platform"):

* ``ib_write_lat``-style ping-pong RTT of a small inline write:
  **3.69 us**,
* large-message goodput: **11 686.4 MiB/s** on the 100 Gb/s link,
* message inlining below 128 B (the asymmetry that makes rFaaS
  invocations with 128 B payloads cost ~630 ns extra: the 12-byte
  function header pushes the request over the inline threshold in one
  direction only),
* blocking completion-channel notification costing ~4.34 us over busy
  polling (the gap between the paper's 326 ns hot and 4.67 us warm
  overheads).

The small-message one-way latency decomposes as::

    nic_tx + [pcie_dma_fetch if not inline] + serialization(size)
           + link_prop + switch + link_prop + nic_rx

and the ping-pong benchmark adds one ``poll_detect`` per direction:

    RTT = 2 * (1800 + 45) = 3690 ns                       (2-byte inline)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import MiB


@dataclass(frozen=True)
class LatencyModel:
    """Component latencies (ns) and bandwidth of the simulated fabric."""

    #: Requester NIC processing: doorbell, WQE fetch, packetization.
    nic_tx_ns: int = 500
    #: Responder NIC processing: packet handling, DMA write to host memory.
    nic_rx_ns: int = 500
    #: One switch traversal (cut-through).
    switch_ns: int = 300
    #: Propagation + PHY per link; two links per path (host-switch-host).
    link_prop_ns: int = 250
    #: Extra PCIe DMA read on the requester for non-inlined payloads.
    pcie_dma_fetch_ns: int = 304
    #: Cost for a busy-polling consumer to notice and dequeue a CQE.
    poll_detect_ns: int = 45
    #: Interrupt + wakeup when consuming completions via a completion
    #: channel (blocking wait) instead of busy polling.
    blocking_notify_ns: int = 4_389
    #: Responder-side execution of an atomic operation.
    atomic_exec_ns: int = 100
    #: Max payload copied into the WQE itself (no DMA fetch).
    max_inline_data: int = 128
    #: Link goodput. 100 Gb/s RoCE measured at 11 686.4 MiB/s.
    bandwidth_bytes_per_sec: float = 11_686.4 * MiB
    #: Receiver-not-ready retry timer.
    rnr_timer_ns: int = 10_000
    #: Transport ACK delay for signaled sends (does not hold links).
    ack_delay_ns: int = 1_800

    def serialization_ns(self, size: int) -> int:
        """Time to clock *size* bytes onto the wire."""
        if size <= 0:
            return 0
        return round(size * 1e9 / self.bandwidth_bytes_per_sec)

    def propagation_ns(self) -> int:
        """Host -> switch -> host path latency excluding serialization."""
        return 2 * self.link_prop_ns + self.switch_ns

    def one_way_ns(self, size: int, inline: bool) -> int:
        """Uncontended one-way latency for a *size*-byte message."""
        dma = 0 if inline else self.pcie_dma_fetch_ns
        return (
            self.nic_tx_ns
            + dma
            + self.serialization_ns(size)
            + self.propagation_ns()
            + self.nic_rx_ns
        )

    def pingpong_rtt_ns(self, size: int) -> int:
        """What ``ib_write_lat`` would measure for *size*-byte payloads."""
        inline = size <= self.max_inline_data
        return 2 * (self.one_way_ns(size, inline) + self.poll_detect_ns)

    @classmethod
    def soft_roce(cls) -> "LatencyModel":
        """Software-emulated RDMA (SoftRoCE / FreeFlow, Sec. III-F).

        The verbs API is identical, but every operation traverses the
        kernel: NIC 'processing' becomes software packetization, there
        is no real inlining advantage, completion notification rides
        regular interrupts, and goodput drops to what a CPU core can
        push through the UDP encapsulation (~25 Gb/s).  rFaaS runs
        unmodified on top -- at the cost the ablation benchmark shows.
        """
        return cls(
            nic_tx_ns=6_000,
            nic_rx_ns=7_000,
            switch_ns=300,
            link_prop_ns=250,
            pcie_dma_fetch_ns=0,  # payloads are copied either way
            poll_detect_ns=120,
            blocking_notify_ns=9_000,
            atomic_exec_ns=800,
            max_inline_data=0,
            bandwidth_bytes_per_sec=3.1e9,
            rnr_timer_ns=50_000,
            ack_delay_ns=13_000,
        )
