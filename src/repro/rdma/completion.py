"""Completion queues and the two ways of consuming them.

rFaaS's hot/warm split is exactly the choice between these consumers:

* ``busy_poll`` -- the thread spins on the CQ; noticing a CQE costs
  ``poll_detect_ns`` (45 ns) but occupies the core the whole time.
* ``blocking_wait`` -- the thread sleeps on a completion channel; the
  NIC raises an interrupt, costing ``blocking_notify_ns`` (~4.34 us)
  extra latency but no CPU while idle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.rdma.constants import WCOpcode, WCStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.sim.events import Event


@dataclass(slots=True)
class WorkCompletion:
    """One CQE (``ibv_wc``)."""

    wr_id: int
    opcode: WCOpcode
    status: WCStatus = WCStatus.SUCCESS
    byte_len: int = 0
    imm_data: Optional[int] = None
    qp_num: int = 0
    #: Virtual time the completion entered the CQ.
    timestamp: int = 0
    #: Free-form context (used by tests and higher layers).
    context: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


class CQOverflow(Exception):
    """The CQ filled up: on hardware this is a fatal async event."""


class CompletionQueue:
    """A bounded queue of :class:`WorkCompletion` entries."""

    def __init__(self, env: "Environment", depth: int = 4_096, name: str = "cq") -> None:
        self.env = env
        self.depth = depth
        self.name = name
        self._entries: deque[WorkCompletion] = deque()
        self._waiters: list["Event"] = []
        self.completions_pushed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, wc: WorkCompletion) -> None:
        """NIC-side: deposit a completion and wake any waiter."""
        if len(self._entries) >= self.depth:
            raise CQOverflow(f"{self.name}: CQ depth {self.depth} exceeded")
        wc.timestamp = self.env.now
        self._entries.append(wc)
        self.completions_pushed += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def poll(self, max_entries: int = 16) -> list[WorkCompletion]:
        """Non-blocking: drain up to *max_entries* CQEs (may be empty)."""
        out: list[WorkCompletion] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def arrival_event(self) -> "Event":
        """Event fired at the next push (or immediately if non-empty).

        Public so consumers can race it against a timeout -- the hot
        worker loop races it against the hot->warm rollback timer.
        """
        event = self.env.event()
        if self._entries:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    # Backwards-compatible private alias.
    _arrival_event = arrival_event

    # -- consumer styles -----------------------------------------------

    def busy_poll(self, max_entries: int = 16):
        """Generator: spin until at least one CQE is available.

        Usage inside a process: ``wcs = yield from cq.busy_poll()``.
        Latency: poll_detect_ns after the CQE lands.
        """
        while True:
            if not self._entries:
                # Only allocate + schedule a wakeup event when the CQ is
                # actually empty; same-tick batches of completions are
                # drained in one poll with no event per CQE.
                yield self._arrival_event()
            yield self.env.timeout(self.nic.model.poll_detect_ns)
            wcs = self.poll(max_entries)
            if wcs:
                return wcs
            # A competing consumer drained the CQ between the event and
            # our poll; spin again.

    def blocking_wait(self, max_entries: int = 16):
        """Generator: sleep on the completion channel until a CQE lands.

        Latency: blocking_notify_ns (interrupt + wakeup) after the CQE.
        """
        while True:
            if not self._entries:
                yield self._arrival_event()
            yield self.env.timeout(self.nic.model.blocking_notify_ns)
            wcs = self.poll(max_entries)
            if wcs:
                return wcs

    # The owning NIC injects itself here at creation so the consumer
    # helpers can reach the latency model.
    nic: Any = None

    def __repr__(self) -> str:
        return f"<CompletionQueue {self.name} pending={len(self._entries)}>"
