"""Sec. IV-C billing-model ablation: what hot polling buys and costs.

On a sparse workload the hot worker answers ~4.3 us faster per call but
pays for every nanosecond of busy polling; the warm worker is nearly
free while idle.  "Applications requiring the highest performance pay
the premium for nanosecond invocation overheads."
"""

import pytest
from conftest import show

from repro.experiments.billing import run_billing
from repro.sim import ms


def test_billing_model_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_billing(invocations=40, think_time_ns=ms(10)), rounds=1, iterations=1
    )
    show(result)

    # Hot is faster by the blocking-notification gap (~4.3 us).
    assert result.latency_advantage_ns == pytest.approx(4_344, abs=100)

    # Hot accrues polling time roughly equal to the think time.
    assert result.hot.account.hotpoll_ns >= 40 * ms(9)
    assert result.warm.account.hotpoll_ns == 0

    # And therefore costs decisively more on this sparse pattern.
    assert result.cost_premium > 10
