"""Table I: the high-performance FaaS requirements matrix.

Every 'solved'/'enabled' cell of the paper's table is re-checked
against the built system (latency, direct allocations, bandwidth,
decentralized scheduling, function chaining).
"""

from conftest import show

from repro.experiments.table1 import run_table1


def test_table1_requirements(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    show(result)
    failed = [c.requirement for c in result.checks if not c.passed]
    assert not failed, f"requirement checks failed: {failed}"
    solved = [c for c in result.checks if c.paper_status == "solved"]
    assert len(solved) == 4
