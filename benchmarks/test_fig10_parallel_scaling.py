"""Fig. 10 / Sec. V-D: parallel scalability, 1-32 workers.

Paper's claims checked: hot invocations with 1 kB payloads scale with
insignificant overhead; 1 MB payloads slow down with worker count
because the 100 Gb/s link saturates -- "parallel scaling of rFaaS
executors is bounded only by network capacity".
"""

from conftest import show

from repro.experiments.fig10 import run_fig10
from repro.rdma.latency import LatencyModel
from repro.sim import KB, MB

WORKERS = (1, 2, 4, 8, 16, 32)


def test_fig10_parallel_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig10(workers=WORKERS, repetitions=3), rounds=1, iterations=1
    )
    show(result)

    # 1 kB: near-flat in worker count (hot, bare-metal).
    assert result.flatness("hot", "bare-metal", 1 * KB) < 2.0

    # 1 MB: bandwidth-bound growth -- at 32 workers the median RTT must
    # be several times the single-worker RTT...
    series = result.series[("hot", "bare-metal", 1 * MB)]
    assert series[32] / series[1] > 4
    # ...and at least the serialization time of 32 MB on one link.
    wall = LatencyModel().serialization_ns(32 * MB) / 2  # median ~ half the fan-out
    assert series[32] >= wall * 0.8

    # Docker vs bare on 1 MB differs by well under 1% (paper: <1%).
    docker = result.series[("hot", "docker", 1 * MB)]
    bare = result.series[("hot", "bare-metal", 1 * MB)]
    for w in WORKERS:
        assert abs(docker[w] - bare[w]) / bare[w] < 0.01

    # Warm stays above hot at every scale (1 kB).
    for w in WORKERS:
        assert (
            result.series[("warm", "bare-metal", 1 * KB)][w]
            > result.series[("hot", "bare-metal", 1 * KB)][w]
        )
