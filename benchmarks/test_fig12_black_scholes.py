"""Fig. 12 / Sec. V-F: Black-Scholes parallel offloading.

Paper's claims checked: offloading the entire work to rFaaS scales
efficiently compared to OpenMP as long as per-thread work is not close
to the ~20 ms network transmission time of the 229 MB input; the
OpenMP+rFaaS hybrid (half local, half remote) beats both everywhere.
"""

from conftest import show

from repro.experiments.fig12 import run_fig12
from repro.sim import ms

WORKERS = (1, 2, 4, 8, 16, 32)


def test_fig12_black_scholes(benchmark):
    result = benchmark.pedantic(lambda: run_fig12(workers=WORKERS), rounds=1, iterations=1)
    show(result)

    openmp = result.series["openmp"]
    rfaas = result.series["rfaas"]
    hybrid = result.series["openmp+rfaas"]

    # The input transfer wall is ~19-20 ms (229 MB on 11.6 GiB/s).
    assert ms(17) <= result.transfer_wall_ns <= ms(21)

    # Low parallelism: offloading is competitive (within 10%).
    assert rfaas[1] <= openmp[1] * 1.10

    # High parallelism: the transfer wall makes full offload lose.
    assert rfaas[32] >= result.transfer_wall_ns
    assert rfaas[32] > openmp[32]

    # The crossover exists somewhere inside the sweep.
    wins = [w for w in WORKERS if rfaas[w] <= openmp[w] * 1.10]
    losses = [w for w in WORKERS if rfaas[w] > openmp[w] * 1.10]
    assert wins and losses and max(wins) < min(losses)

    # The hybrid never loses to either pure strategy.
    for w in WORKERS:
        assert hybrid[w] <= openmp[w]
        assert hybrid[w] <= rfaas[w]
