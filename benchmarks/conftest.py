"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures, prints
the rows/series (captured with ``pytest -s`` or in the benchmark log),
and asserts the *shape* of the result against the paper's claims.
pytest-benchmark wraps each harness, so the suite also tracks the
wall-clock cost of the simulation itself.
"""

import pytest


def show(result):
    """Print a harness result's table to the captured stdout."""
    result.table().show()
    return result


@pytest.fixture
def quick_mode():
    """Benchmarks run their CI-sized sweep by default."""
    return True
