"""Fig. 1 / Sec. V-C: rFaaS vs AWS Lambda, OpenWhisk, Nightcore.

Paper's claims checked here:

* rFaaS beats AWS Lambda by 695x-3692x over 1 kB-5 MB,
* rFaaS beats OpenWhisk by 5904x-22406x (within its 125 kB cap),
* rFaaS beats Nightcore by 23x-39x,
* Lambda sits at 19.5 ms (1 kB) to >600 ms (5 MB).
"""

from conftest import show

from repro.experiments.fig1 import run_fig1
from repro.sim import ms

SIZES = (1_000, 10_000, 100_000, 1_000_000, 5_000_000)


def test_fig1_platform_comparison(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig1(sizes=SIZES, repetitions=5), rounds=1, iterations=1
    )
    show(result)

    # Lambda anchors from the paper's own measurements.
    assert result.series["aws-lambda"][1_000] == __import__("pytest").approx(ms(19.5), rel=0.05)
    assert result.series["aws-lambda"][5_000_000] >= ms(550)

    # Speedup bands (shape: same order of magnitude as the paper).
    lo, hi = result.speedup_range("aws-lambda")
    assert 500 <= lo <= 1500 and 2500 <= hi <= 6000  # paper: 695x-3692x

    lo, hi = result.speedup_range("openwhisk")
    assert 4000 <= lo and hi <= 30000  # paper: 5904x-22406x

    lo, hi = result.speedup_range("nightcore")
    assert 20 <= lo and hi <= 45  # paper: 23x-39x

    # OpenWhisk cannot take payloads over its 125 kB argv cap.
    assert 1_000_000 not in result.series["openwhisk"]

    # rFaaS wins at every size against every platform with data.
    for platform in ("aws-lambda", "openwhisk", "nightcore"):
        for size, rtt in result.series[platform].items():
            assert rtt > result.series["rfaas"][size]
