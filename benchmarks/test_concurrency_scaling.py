"""Decentralization extension: scaling with concurrent clients.

The architectural payoff of leases + direct connections, measured:
rFaaS's invocation path has no shared control-plane component, so
median latency stays flat while aggregate throughput grows linearly
with clients; centralized platforms queue at their brokers/gateways.
"""

from conftest import show

from repro.experiments.concurrency import run_concurrency


def test_concurrency_scaling(benchmark):
    result = benchmark.pedantic(run_concurrency, rounds=1, iterations=1)
    show(result)

    # rFaaS latency is essentially flat from 1 to 64 clients.
    assert result.latency_inflation("rfaas") < 1.5
    # Centralized open-source platforms inflate by an order of magnitude.
    assert result.latency_inflation("openwhisk-queued") > 10
    assert result.latency_inflation("nightcore-queued") > 5

    # Throughput: rFaaS scales ~linearly with clients...
    rfaas = result.throughput["rfaas"]
    assert rfaas[64] > 30 * rfaas[1]
    # ...OpenWhisk saturates at its single Kafka broker.
    openwhisk = result.throughput["openwhisk-queued"]
    assert openwhisk[64] < 2 * openwhisk[4]
    # And at every concurrency rFaaS beats everyone on latency.
    for clients in result.client_counts:
        for platform in ("openwhisk-queued", "nightcore-queued", "aws-lambda-queued"):
            assert result.latency[platform][clients] > result.latency["rfaas"][clients]
