"""Fig. 13 / Sec. V-G: MPI applications accelerated with rFaaS.

Paper's claims checked: matrix-matrix multiplication speeds up by
1.88x-1.94x when half of each rank's work goes to a remote function;
the Jacobi solver (matrix cached in the warm sandbox, 1-15 ms
iterations) speeds up by 1.7x-2.2x; sharing the network between MPI
and rFaaS traffic does not break the acceleration.
"""

from conftest import show

from repro.experiments.fig13 import run_fig13
from repro.sim import ms
from repro.workloads.jacobi import jacobi_iteration_cost_ns

RANKS = (2, 8, 18, 36)


def test_fig13_hpc_apps(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig13(
            ranks=RANKS, gemm_n=4096, gemm_repetitions=2, jacobi_iterations=400
        ),
        rounds=1,
        iterations=1,
    )
    show(result)

    # GEMM speedups in (or near) the paper's 1.88x-1.94x band.
    for ranks in RANKS:
        assert 1.7 <= result.gemm_speedup(ranks) <= 2.0, ranks

    # Jacobi speedups within the paper's 1.7x-2.2x band.
    for ranks in RANKS:
        assert 1.7 <= result.jacobi_speedup(ranks) <= 2.2, ranks

    # The Jacobi per-iteration cost sits in the paper's 1-15 ms window.
    assert ms(1) <= jacobi_iteration_cost_ns(2000) <= ms(15)

    # Baselines are flat in rank count (independent ranks).
    assert result.gemm["mpi"][2] == result.gemm["mpi"][36]
