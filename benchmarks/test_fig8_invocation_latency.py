"""Fig. 8 / Sec. V-A: invocation latency vs raw RDMA and TCP.

Paper's numbers checked:

* raw RDMA RTT 3.69 us (small messages),
* hot overhead ~326 ns bare-metal, ~+50 ns under Docker,
* the ~630 ns overhead anomaly at exactly 128 B payloads (the 12-byte
  header defeats inlining in the request direction),
* warm overhead ~4.67 us, ~+650 ns under Docker,
* TCP an order of magnitude above RDMA.
"""

import pytest
from conftest import show

from repro.experiments.fig8 import run_fig8

SIZES = (2, 64, 128, 256, 1024, 16384, 65536)


def test_fig8_invocation_latency(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig8(sizes=SIZES, repetitions=10), rounds=1, iterations=1
    )
    show(result)

    assert result.series["rdma"][2] == pytest.approx(3_690, rel=0.01)

    # Hot overhead: ~326 ns; at 128 B the inline asymmetry bumps it.
    assert result.overhead_vs_rdma("hot", 2) == pytest.approx(326, abs=15)
    assert result.overhead_vs_rdma("hot", 128) == pytest.approx(630, abs=30)
    assert result.overhead_vs_rdma("hot", 256) == pytest.approx(326, abs=15)

    # Docker data-path penalties.
    assert result.series["hot-docker"][2] - result.series["hot"][2] == pytest.approx(50, abs=5)
    assert result.series["warm-docker"][2] - result.series["warm"][2] == pytest.approx(650, abs=20)

    # Warm overhead ~4.67 us.
    assert result.overhead_vs_rdma("warm", 2) == pytest.approx(4_670, abs=50)

    # TCP pays the kernel tax at every size.
    for size in SIZES:
        assert result.series["tcp"][size] > result.series["rdma"][size] * 4

    # Monotone in size for every series.
    for name, series in result.series.items():
        values = [series[s] for s in SIZES]
        assert values == sorted(values), name
