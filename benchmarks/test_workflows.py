"""Sec. VII extension: serverless workflows orchestrated over rFaaS.

The discussion's claim -- an rFaaS-based orchestrator achieves
"single-digit microsecond latency overhead of invocations" per workflow
hop -- measured on a four-stage pipeline and a fan-out/fan-in diamond.
"""

from conftest import show

from repro.analysis.reporting import Table, format_ns
from repro.core import CodePackage, Deployment, FunctionSpec, Workflow, WorkflowRunner, chain
from repro.core.functions import echo_function
from repro.sim import us


def run_workflow_bench():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = CodePackage(name="wf")
    package.add(echo_function())
    package.add(FunctionSpec(name="stamp", handler=lambda d: d + b"*"))

    pipeline = chain("pipeline", "echo", "echo", "echo", "echo")
    diamond = Workflow("diamond")
    diamond.add("split", "echo")
    diamond.add("left", "stamp", after=("split",))
    diamond.add("right", "stamp", after=("split",))
    diamond.add("join", "echo", after=("left", "right"))

    runs = {}

    def driver():
        yield from invoker.allocate(package, workers=4)
        runner = WorkflowRunner(invoker)
        # Warm-up hop.
        yield from runner.run(chain("warm", "echo"), b"w")
        runs["pipeline"] = yield from runner.run(pipeline, b"data")
        runs["diamond"] = yield from runner.run(diamond, b"ab")
        return runs

    dep.run(driver())
    return pipeline, diamond, runs


class WorkflowBenchResult:
    def __init__(self, pipeline, diamond, runs):
        self.pipeline = pipeline
        self.diamond = diamond
        self.runs = runs

    def table(self):
        table = Table(
            "Sec. VII -- workflow orchestration over rFaaS",
            ["workflow", "stages", "makespan", "per-stage"],
        )
        for name, workflow in (("pipeline", self.pipeline), ("diamond", self.diamond)):
            run = self.runs[name]
            stages = len(workflow.stages)
            depth = stages if name == "pipeline" else 3  # diamond depth
            table.add_row(
                name, stages, format_ns(run.makespan_ns), format_ns(run.makespan_ns / depth)
            )
        return table


def test_workflow_orchestration(benchmark):
    pipeline, diamond, runs = benchmark.pedantic(run_workflow_bench, rounds=1, iterations=1)
    result = WorkflowBenchResult(pipeline, diamond, runs)
    show(result)

    # Four chained no-op hops in well under 10 us each.
    per_stage = runs["pipeline"].makespan_ns / 4
    assert per_stage < us(10)

    # The diamond's parallel arms overlap: its critical path is 3 hops,
    # so the makespan stays well under 4 sequential hops.
    assert runs["diamond"].makespan_ns < runs["pipeline"].makespan_ns

    # Dataflow correctness through the DAG.
    assert runs["diamond"].outputs["join"] == b"ab*ab*"
    assert runs["pipeline"].result(pipeline) == b"data"
