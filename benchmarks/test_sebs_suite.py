"""Suite extension: five real SeBS-style functions vs AWS Lambda.

Generalizes Fig. 11 across the workload taxonomy of Sec. VII: the more
data-movement-bound a function, the bigger rFaaS's advantage; compute-
bound inference still wins, just less.
"""

from conftest import show

from repro.experiments.suite import run_suite


def test_sebs_suite(benchmark):
    result = benchmark.pedantic(lambda: run_suite(repetitions=8), rounds=1, iterations=1)
    show(result)

    # rFaaS wins on every function.
    for case in result.medians:
        assert result.speedup(case) > 1.0, case

    # The taxonomy: short-compute/data-heavy >> compute-bound.
    assert result.speedup("graph-bfs") > 50       # microsecond compute
    assert result.speedup("thumbnailer") > 10     # streaming image pass
    assert result.speedup("compression") > 8
    assert result.speedup("recognition") < 2      # 160 ms inference
