"""Sec. V-B ablation: warm container pools.

"Low-latency approaches can reduce this time to as little as 125
milliseconds" -- with a pool of pre-booted generic containers, the
2.7 s Docker cold start collapses to the attach + worker-start cost.
"""

from conftest import show

from repro.experiments.warmpool import run_warmpool
from repro.sim import ms, secs


def test_warm_pool_ablation(benchmark):
    result = benchmark.pedantic(lambda: run_warmpool(repetitions=3), rounds=1, iterations=1)
    show(result)

    assert result.cold_ns >= secs(2.3)  # the Fig. 9b boot path
    assert ms(80) <= result.pooled_ns <= ms(160)  # the cited ~125 ms floor
    assert result.improvement > 15
    assert result.pool_hits >= 3
