"""Sec. III-D extension: tenant mixes sharing spot executors.

Quantifies the oversubscription story: the hot, latency-critical
tenant keeps microsecond-class invocation overhead while two cheaper
tenants share the same pair of executors; the billing model prices the
hot-polling premium accordingly.
"""

from conftest import show

from repro.experiments.multitenant import run_multitenant
from repro.sim import ms, us


def test_multitenant_sharing(benchmark):
    result = benchmark.pedantic(run_multitenant, rounds=1, iterations=1)
    show(result)

    hot = result.outcomes["latency-critical"]
    bursty = result.outcomes["bursty-service"]
    batch = result.outcomes["batch-analytics"]

    # The hot tenant's invocation overhead stays microsecond-class:
    # RTT = 20 us compute + ~4.5 us platform.
    assert result.median_rtt("latency-critical") < us(30)
    assert result.p99_rtt("latency-critical") < us(40)

    # Warm tenants pay the blocking-wait latency but far less money.
    assert result.median_rtt("batch-analytics") >= ms(2)  # compute-bound
    assert hot.hotpoll_s > 10 * bursty.hotpoll_s
    assert batch.hotpoll_s == 0.0

    # Cost per call: the hot tenant pays the premium.
    hot_per_call = hot.cost / len(hot.rtts_ns)
    bursty_per_call = bursty.cost / len(bursty.rtts_ns)
    assert hot_per_call > 5 * bursty_per_call

    # With enough cores, the mix coexists without redirects.
    assert hot.redirects == bursty.redirects == batch.redirects == 0
