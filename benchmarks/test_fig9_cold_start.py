"""Fig. 9 / Sec. V-B: cold invocation overheads.

Paper's claims checked: worker creation is the longest step in every
configuration; all other steps take single-digit milliseconds; totals
are ~25 ms for bare-metal executors and ~2.7 s for Docker.
"""

from conftest import show

from repro.experiments.fig9 import run_fig9
from repro.sim import ms, secs


def test_fig9_cold_start(benchmark):
    result = benchmark.pedantic(lambda: run_fig9(repetitions=3), rounds=1, iterations=1)
    show(result)

    # Bare-metal: ~25 ms total (Fig. 9a).
    total_bare = result.total_ns("bare-metal")
    assert ms(15) <= total_bare <= ms(40)

    # Docker: ~2.7 s total (Fig. 9b).
    total_docker = result.total_ns("docker")
    assert secs(2.3) <= total_docker <= secs(3.2)

    # The longest step is always worker creation.
    assert result.dominant_step("bare-metal") == "spawn_workers"
    assert result.dominant_step("docker") == "spawn_workers"

    # "All other steps take single-digit milliseconds to accomplish."
    for sandbox in ("bare-metal", "docker"):
        for step, value in result.breakdowns[sandbox].items():
            if step != "spawn_workers":
                assert value < ms(10), (sandbox, step)
