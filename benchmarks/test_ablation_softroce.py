"""Sec. III-F modularity ablation: rFaaS on software RDMA.

The platform runs unmodified on a SoftRoCE-like network model; the
bench quantifies the cost of losing kernel bypass: invocations move
from single-digit to tens of microseconds, and single-flow goodput
drops to CPU-bound UDP encapsulation rates.
"""

from conftest import show

from repro.experiments.softroce import run_softroce
from repro.sim import us


def test_softroce_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_softroce(repetitions=8), rounds=1, iterations=1
    )
    show(result)

    # Hardware path stays in single-digit microseconds at small sizes.
    assert result.hardware[64] < us(5)
    # Software RDMA works but costs roughly an order of magnitude more.
    assert 3 <= result.slowdown(64) <= 15
    # The gap narrows for big payloads (bandwidth-bound on both).
    assert result.slowdown(1_000_000) < result.slowdown(64)
