"""Wall-clock performance of the reproduction itself.

These are true pytest-benchmark measurements (multiple rounds) of the
three hot loops everything else stands on: the DES kernel, the RDMA
data path, and a full rFaaS invocation.  They guard against
performance regressions that would make the paper-scale sweeps
impractical to run.
"""

from repro.core.deployment import Deployment
from repro.rdma.microbench import ib_write_lat
from repro.sim import Environment
from repro.workloads.noop import noop_package


def test_kernel_event_throughput(benchmark):
    """Pure event-loop throughput: ping-pong timeouts."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(5_000):
                yield env.timeout(10)

        env.process(ticker())
        env.run()
        return env.events_processed

    events = benchmark(run)
    assert events >= 5_000


def test_rdma_pingpong_throughput(benchmark):
    """Full verbs data path: 100 WRITE_WITH_IMM ping-pongs."""

    result = benchmark(lambda: ib_write_lat(64, iterations=100))
    assert len(result.rtts_ns) == 100


def test_invocation_throughput(benchmark):
    """End-to-end rFaaS invocations incl. control-plane setup."""

    def run():
        dep = Deployment.build(executors=1, clients=1)
        dep.settle()
        invoker = dep.new_invoker()
        package = noop_package()

        def driver():
            yield from invoker.allocate(package, workers=1)
            in_buf = invoker.alloc_input(1024)
            in_buf.write(bytes(1024))
            out_buf = invoker.alloc_output(1024)
            for _ in range(50):
                future = invoker.submit("echo", in_buf, 1024, out_buf)
                yield future.wait()
            return 50

        return dep.run(driver())

    assert benchmark(run) == 50
