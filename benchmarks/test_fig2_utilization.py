"""Fig. 2 / Sec. II-A: Piz Daint utilization (the motivation).

Paper's observations checked: node utilization in the 80-94% band,
roughly three-quarters of node memory idle, and idle windows that are
plentiful but short (minutes, not hours, at the median).
"""

from conftest import show

from repro.experiments.fig2 import run_fig2


def test_fig2_utilization(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig2(total_nodes=500, days=2.0), rounds=1, iterations=1
    )
    show(result)

    assert 0.80 <= result.mean_node_utilization <= 0.97
    assert result.mean_memory_utilization <= 0.40  # ~75% idle
    assert result.mean_idle_nodes >= 1  # harvestable capacity exists
    assert result.idle_window_ns, "idle windows must occur"
    # Median harvesting window is short -- minutes, not hours.
    assert result.median_idle_window_minutes <= 60
