"""Fig. 11 / Sec. V-E: real serverless functions vs AWS Lambda.

Thumbnailer (97 kB & 3.6 MB images) and ResNet-50-style inference
(53 kB & 230 kB images) run with identical compute cost on both
platforms, so the measured gap is the invocation path.  Paper's shape:
rFaaS wins decisively where data movement dominates (thumbnailer) and
still wins where inference time dominates (recognition).
"""

from conftest import show

from repro.experiments.fig11 import run_fig11
from repro.sim import ms


def test_fig11_serverless_functions(benchmark):
    result = benchmark.pedantic(lambda: run_fig11(repetitions=10), rounds=1, iterations=1)
    show(result)

    # rFaaS is faster in every case.
    for case in result.stats:
        assert result.speedup(case) > 1.0, case

    # Data-movement-dominated cases show large gaps...
    assert result.speedup("thumbnailer-small") > 10
    assert result.speedup("thumbnailer-large") > 4
    # ...compute-dominated inference shows modest but real gaps.
    assert 1.05 < result.speedup("recognition-small") < 3
    assert 1.05 < result.speedup("recognition-large") < 3

    # Inference is dominated by the model forward pass on both sides.
    assert result.stats["recognition-small"]["rfaas"].median > ms(100)

    # Large thumbnails ride the RDMA fabric in tens of ms on rFaaS but
    # hundreds on Lambda (base64 + HTTP + control plane).
    assert result.stats["thumbnailer-large"]["rfaas"].median < ms(60)
    assert result.stats["thumbnailer-large"]["aws-lambda"].median > ms(150)
