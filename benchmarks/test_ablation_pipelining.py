"""Throughput ablation: per-worker invocation pipelining.

The paper's executor takes one request at a time per worker (one input
buffer).  Slicing the buffer into slots overlaps the next request's
transfer with the current execution; the gain grows with payload size
and tops out once the transfer is fully hidden.
"""

from conftest import show

from repro.experiments.pipelining import run_pipelining


def test_pipelining_ablation(benchmark):
    result = benchmark.pedantic(lambda: run_pipelining(burst=24), rounds=1, iterations=1)
    show(result)

    # Pipelining never hurts and helps more for large payloads.
    for size in result.sizes:
        assert result.gain(size, 4) >= 1.0
    assert result.gain(1_048_576, 4) > result.gain(1_024, 4)
    assert result.gain(1_048_576, 4) > 1.2
