"""Design ablation: allocation leases vs per-invocation scheduling.

The architectural bet of Sec. III-B, quantified: putting a placement
RPC back on the invocation path (as Lambda/OpenWhisk-style control
planes do) costs several times the entire rFaaS invocation.
"""

from conftest import show

from repro.experiments.leases import run_leases


def test_lease_ablation(benchmark):
    result = benchmark.pedantic(lambda: run_leases(invocations=20), rounds=1, iterations=1)
    show(result)

    # Centralized placement costs at least 5x the leased invocation.
    assert result.slowdown >= 5
    # The leased path stays in single-digit microseconds.
    assert result.lease_rtt_ns < 10_000
