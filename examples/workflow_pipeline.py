#!/usr/bin/env python3
"""Serverless workflows on rFaaS (the Sec. VII discussion, running).

A fan-out/fan-in image-statistics DAG executed by the rFaaS workflow
orchestrator: one stage normalizes the image, two independent stages
compute per-channel statistics and an edge metric in parallel, and a
join stage assembles the report.  Per-hop orchestration overhead stays
in single-digit microseconds -- the number the paper projects for
rFaaS-based workflow engines.

Run:  python examples/workflow_pipeline.py
"""

import struct

import numpy as np

from repro.core import CodePackage, Deployment, FunctionSpec, Workflow, WorkflowRunner
from repro.sim import ns_to_us, us
from repro.workloads.images import Image, generate_image


def normalize(payload: bytes) -> bytes:
    image = Image.decode(payload)
    pixels = image.pixels.astype(np.float64)
    lo, hi = pixels.min(), pixels.max()
    scaled = ((pixels - lo) / max(hi - lo, 1) * 255).astype(np.uint8)
    return Image(pixels=scaled).encode()


def channel_stats(payload: bytes) -> bytes:
    image = Image.decode(payload)
    means = image.pixels.mean(axis=(0, 1))
    return struct.pack("<3d", *[float(m) for m in means])


def edge_energy(payload: bytes) -> bytes:
    image = Image.decode(payload)
    gray = image.pixels.mean(axis=2)
    gx = np.abs(np.diff(gray, axis=1)).mean()
    gy = np.abs(np.diff(gray, axis=0)).mean()
    return struct.pack("<2d", float(gx), float(gy))


def assemble(payload: bytes) -> bytes:
    means = struct.unpack_from("<3d", payload, 0)
    gx, gy = struct.unpack_from("<2d", payload, 24)
    report = (
        f"channels R={means[0]:.1f} G={means[1]:.1f} B={means[2]:.1f}; "
        f"edges x={gx:.2f} y={gy:.2f}"
    )
    return report.encode()


def main() -> None:
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker(name="workflow-demo")

    package = CodePackage(name="image-stats")
    pixel_cost = 5  # ns per pixel for each analysis pass
    for name, handler in (
        ("normalize", normalize),
        ("channel-stats", channel_stats),
        ("edge-energy", edge_energy),
        ("assemble", assemble),
    ):
        package.add(
            FunctionSpec(name=name, handler=handler, cost_ns=lambda size: (size // 3) * pixel_cost)
        )

    workflow = Workflow("image-report")
    workflow.add("normalize", "normalize", out_capacity=1 << 20)
    workflow.add("stats", "channel-stats", after=("normalize",))
    workflow.add("edges", "edge-energy", after=("normalize",))
    workflow.add("report", "assemble", after=("stats", "edges"))

    image = generate_image(320, 240)

    def driver():
        yield from invoker.allocate(package, workers=4)
        runner = WorkflowRunner(invoker)
        run = yield from runner.run(workflow, image.encode())
        return run

    run = dep.run(driver())

    print(f"input: {image.width}x{image.height} image ({image.nbytes:,} bytes)\n")
    for stage in workflow.validate():
        print(f"  stage {stage:<12} rtt={ns_to_us(run.stage_rtt_ns[stage]):9.1f} us")
    print(f"\nreport: {run.result(workflow).decode()}")
    compute = sum(run.stage_rtt_ns.values())
    print(f"makespan: {ns_to_us(run.makespan_ns):.1f} us "
          f"(critical path 3 of 4 stages; stats/edges ran in parallel)")
    assert run.makespan_ns < compute  # parallelism is real


if __name__ == "__main__":
    main()
