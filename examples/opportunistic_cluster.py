#!/usr/bin/env python3
"""Opportunistic computing: harvesting a busy cluster's idle minutes.

The scenario that motivates rFaaS (Sec. II-A): a batch-managed cluster
runs at ~90 % node utilization, but the idle slivers between jobs add
up.  Here a SLURM-like scheduler runs a synthetic Piz Daint workload
while two nodes are donated to rFaaS as spot executors; a serverless
tenant keeps pricing option portfolios (Black-Scholes) on them with
short-lived leases, and at the end we compare the harvested node-time
against the billing database.

Run:  python examples/opportunistic_cluster.py
"""

import numpy as np

from repro.cluster import BatchScheduler, PizDaintWorkload, UtilizationSampler, WorkloadConfig
from repro.core import Deployment, RFaaSConfig
from repro.core.billing import BillingRates
from repro.sim import GiB, ms, ns_to_ms, secs
from repro.workloads.black_scholes import (
    bs_package,
    generate_options,
    pack_options,
    price_options,
)

SIM_MINUTES = 20
BATCH_NODES = 100
OPTIONS_PER_BURST = 5_000


def main() -> None:
    # The rFaaS side: one manager, two donated spot executors, a client.
    config = RFaaSConfig(executor_idle_timeout_ns=secs(120))
    dep = Deployment.build(executors=2, clients=1, config=config)
    dep.settle()
    env = dep.env

    # The batch side shares the same virtual clock.
    # Short-walltime job mix so the cluster fills within the demo window.
    cluster_cfg = WorkloadConfig(
        total_nodes=BATCH_NODES,
        duration_ns=secs(60 * SIM_MINUTES),
        offered_load=1.4,
        walltime_log_mean=5.2,  # median walltime ~3 min
        walltime_log_sigma=0.8,
        min_walltime_s=45.0,
        max_walltime_s=900.0,
    )
    scheduler = BatchScheduler(env, cluster_cfg.total_nodes, cluster_cfg.node_memory_bytes)
    sampler = UtilizationSampler(env, scheduler, until_ns=cluster_cfg.duration_ns)
    env.process(scheduler.run_trace(PizDaintWorkload(cluster_cfg).generate()))

    invoker = dep.new_invoker(name="harvest-tenant")
    stats = {"bursts": 0, "options": 0, "errors": 0.0}

    def tenant():
        # Lease long enough to span the whole harvesting session.
        yield from invoker.allocate(
            bs_package(),
            workers=4,
            memory_bytes=8 * GiB,
            timeout_ns=secs(60 * SIM_MINUTES + 120),
        )
        rng = np.random.default_rng(7)
        while env.now < cluster_cfg.duration_ns:
            # A burst of pricing work arrives every ~2 s of cluster time.
            options = generate_options(OPTIONS_PER_BURST, seed=int(rng.integers(1 << 30)))
            payload = pack_options(options)
            in_buf = invoker.alloc_input(len(payload))
            out_buf = invoker.alloc_output(8 * OPTIONS_PER_BURST)
            in_buf.write(payload)
            future = invoker.submit("black-scholes", in_buf, len(payload), out_buf)
            result = yield future.wait()
            prices = np.frombuffer(result.output(), dtype=np.float64)
            stats["bursts"] += 1
            stats["options"] += len(prices)
            stats["errors"] = max(
                stats["errors"], float(np.max(np.abs(prices - price_options(options))))
            )
            yield env.timeout(secs(2))
        yield from invoker.deallocate()
        yield env.timeout(ms(50))

    env.run(until=env.process(tenant()))

    account = dep.managers[0].billing.read_account("harvest-tenant")
    print(f"batch cluster over {SIM_MINUTES} simulated minutes:")
    print(f"  node utilization : {sampler.mean_node_utilization():6.1%}")
    print(f"  memory utilization: {sampler.mean_memory_utilization():6.1%}")
    print(f"  jobs completed    : {len(scheduler.completed)}")
    print("\nharvest tenant (4 rFaaS workers on donated nodes):")
    print(f"  pricing bursts    : {stats['bursts']}")
    print(f"  options priced    : {stats['options']:,}")
    print(f"  max pricing error : {stats['errors']:.2e} (vs closed form)")
    print(f"  compute billed    : {account.compute_s * 1e3:.3f} ms")
    print(f"  hot-poll billed   : {account.hotpoll_s:.2f} s")
    print(f"  total cost        : ${account.cost(BillingRates()):.6f}")
    assert stats["errors"] < 1e-9


if __name__ == "__main__":
    main()
