#!/usr/bin/env python3
"""ML inference serving on rFaaS (the paper's Fig. 11 use case).

An image pipeline of two real functions deployed as Docker executors:

* ``thumbnailer`` -- area-average downscale (SeBS image processing),
* ``image-recognition`` -- a real (width-reduced) residual network
  forward pass with deterministic weights, costed like ResNet-50.

The client pushes camera frames, gets (label, score) back, and the
same frames are priced through the AWS Lambda model for comparison --
showing why data-heavy inference serving wants RDMA payloads instead
of base64 over HTTP.

Run:  python examples/ml_inference_service.py
"""

from repro.baselines import AwsLambda
from repro.core import Deployment
from repro.sim import ns_to_ms
from repro.sim.core import Environment
from repro.workloads.images import Image, generate_image
from repro.workloads.resnet import decode_result, inference_cost_ns, resnet_package
from repro.workloads.thumbnailer import thumbnail_cost_ns, thumbnailer_package

FRAMES = [generate_image(640, 480, seed=seed) for seed in (1, 2, 3)]


def serve_on_rfaas() -> list[tuple[int, float, float, float]]:
    """Returns (label, score, thumb_ms, classify_ms) per frame."""
    dep = Deployment.build(executors=2, clients=1)
    dep.settle()
    invoker = dep.new_invoker(name="ml-service")
    results: list[tuple[int, float, float, float]] = []

    def client():
        # Two leases: one worker per stage, Docker sandboxes like the
        # paper's SeBS deployment (cold start ~2.7 s, paid once).
        yield from invoker.allocate(thumbnailer_package(), workers=1, sandbox="docker")
        yield from invoker.allocate(resnet_package(), workers=1, sandbox="docker")
        thumb_conn, resnet_conn = 0, 1

        for frame in FRAMES:
            payload = frame.encode()
            in_buf = invoker.alloc_input(len(payload))
            mid_buf = invoker.alloc_output(len(payload))
            in_buf.write(payload)

            future = invoker.submit("thumbnailer", in_buf, len(payload), mid_buf, worker=thumb_conn)
            thumb_result = yield future.wait()
            thumb = Image.decode(thumb_result.output())

            # Feed the thumbnail to the classifier.
            in_buf2 = invoker.alloc_input(thumb.nbytes)
            out_buf = invoker.alloc_output(64)
            in_buf2.write(thumb.encode())
            future = invoker.submit(
                "image-recognition", in_buf2, thumb.nbytes, out_buf, worker=resnet_conn
            )
            cls_result = yield future.wait()
            label, score = decode_result(cls_result.output())
            results.append(
                (label, score, ns_to_ms(thumb_result.rtt_ns), ns_to_ms(cls_result.rtt_ns))
            )
        yield from invoker.deallocate()

    dep.run(client())
    return results


def price_on_lambda() -> list[float]:
    """The same pipeline as two chained Lambda invocations (ms each)."""
    env = Environment()
    platform = AwsLambda(env)
    rtts: list[float] = []

    def client():
        for frame in FRAMES:
            payload = frame.encode()
            first = yield from platform.invoke(
                "thumbnailer", payload, len(payload), compute_ns=thumbnail_cost_ns(len(payload))
            )
            # Assume the thumbnail is ~1/10 of the frame.
            thumb_size = max(1_000, len(payload) // 10)
            second = yield from platform.invoke(
                "image-recognition",
                None,
                thumb_size,
                compute_ns=inference_cost_ns(thumb_size),
            )
            rtts.append(ns_to_ms(first.rtt_ns + second.rtt_ns))

    env.process(client())
    env.run()
    return rtts


def main() -> None:
    print("serving 3 camera frames through thumbnail -> classify ...\n")
    rfaas_results = serve_on_rfaas()
    lambda_rtts = price_on_lambda()

    print(f"{'frame':>5}  {'label':>5}  {'score':>8}  {'thumb':>9}  {'classify':>9}  {'rfaas total':>11}  {'lambda total':>12}")
    for index, (label, score, thumb_ms, cls_ms) in enumerate(rfaas_results):
        total = thumb_ms + cls_ms
        print(
            f"{index:>5}  {label:>5}  {score:8.3f}  {thumb_ms:7.2f}ms  {cls_ms:7.2f}ms"
            f"  {total:9.2f}ms  {lambda_rtts[index]:10.2f}ms"
        )
    speedup = sum(lambda_rtts) / sum(t + c for _, _, t, c in rfaas_results)
    print(f"\npipeline speedup over AWS Lambda (warm): {speedup:.1f}x")


if __name__ == "__main__":
    main()
