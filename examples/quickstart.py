#!/usr/bin/env python3
"""Quickstart: deploy a function, invoke it hot, read the bill.

This walks the whole rFaaS lifecycle on a simulated two-node cluster:

1. build a deployment (resource manager + spot executor + client),
2. register a code package with two functions,
3. acquire a lease and spin up a worker (cold start, ~25 ms),
4. invoke the functions over direct RDMA (hot path, ~4 us round trip),
5. release the lease and read the billing account.

Run:  python examples/quickstart.py
"""

from repro.core import CodePackage, Deployment, FunctionSpec
from repro.core.billing import BillingRates
from repro.core.functions import echo_function
from repro.sim import ns_to_ms, ns_to_us, us


def main() -> None:
    # 1. A cluster: one manager, one spot executor, one client node.
    dep = Deployment.build(executors=1, managers=1, clients=1)
    dep.settle()  # let the executor register with the manager
    invoker = dep.new_invoker(name="quickstart-tenant")

    # 2. The code package (the paper ships a 7.88 kB shared library).
    package = CodePackage(name="quickstart", size_bytes=7_880)
    package.add(echo_function())
    package.add(
        FunctionSpec(
            name="checksum",
            handler=lambda data: sum(data).to_bytes(8, "little"),
            cost_ns=lambda size: 2 * size,  # ~0.5 B/ns streaming sum
        )
    )

    def client():
        # 3. Cold start: lease + sandbox + workers + connections.
        breakdown = yield from invoker.allocate(package, workers=1)
        print("cold start breakdown:")
        for step, value in breakdown.as_dict().items():
            print(f"  {step:<18} {ns_to_ms(value):8.3f} ms")
        print(f"  {'TOTAL':<18} {ns_to_ms(breakdown.total):8.3f} ms")

        # 4a. Convenience invocation.
        output = yield from invoker.invoke("echo", b"hello rfaas")
        print(f"\necho({b'hello rfaas'!r}) -> {output!r}")

        # 4b. Explicit buffers + futures (the Listing 2 style).
        in_buf = invoker.alloc_input(1024)
        out_buf = invoker.alloc_output(64)
        in_buf.write(bytes(range(256)) * 4)
        for attempt in range(3):
            future = invoker.submit("checksum", in_buf, 1024, out_buf)
            result = yield future.wait()
            value = int.from_bytes(result.output(), "little")
            print(
                f"checksum #{attempt}: value={value} "
                f"rtt={ns_to_us(result.rtt_ns):.2f} us (hot invocation)"
            )

        # 5. Tear down and wait for the billing flush to land.
        yield from invoker.deallocate()
        yield dep.env.timeout(us(500))

    dep.run(client())

    account = dep.managers[0].billing.read_account("quickstart-tenant")
    print(
        f"\nbilling: alloc={account.allocation_gib_s:.3f} GiB*s  "
        f"compute={account.compute_s * 1e6:.1f} us  "
        f"hot-poll={account.hotpoll_s * 1e3:.3f} ms  "
        f"cost=${account.cost(BillingRates()):.9f}"
    )


if __name__ == "__main__":
    main()
