#!/usr/bin/env python3
"""MPI + rFaaS offloading with *real* numerics (the Fig. 13 pattern).

Four MPI ranks each solve a linear system with Jacobi iterations.  Each
rank offloads the bottom half of every iterate to a remote rFaaS
function whose warm sandbox caches the matrix (the paper's "classical
serverless optimization"), computes the top half locally, and stitches
the halves together.  At the end the residual proves the distributed
solve is numerically identical to a local one.

Run:  python examples/hpc_offload.py
"""

import numpy as np

from repro.core import Deployment
from repro.hpc.mpi import MpiJob
from repro.sim import GiB, ns_to_ms
from repro.workloads.jacobi import (
    generate_system,
    jacobi_iteration_cost_ns,
    jacobi_package,
    jacobi_sweep,
    pack_iterate,
    pack_setup,
)

N = 512  # real bytes move through the simulated fabric
ITERATIONS = 100
RANKS = 4


def main() -> None:
    dep = Deployment.build(executors=1, clients=2)
    dep.settle()
    job = MpiJob(dep.fabric, dep.client_nodes, RANKS)
    residuals: dict[int, float] = {}
    timings: dict[int, tuple[int, int]] = {}

    def rank_main(ctx):
        # Every rank gets its own system and its own remote worker.
        a, b = generate_system(N, seed=100 + ctx.rank)
        invoker = dep.new_invoker(
            client_index=dep.client_nodes.index(ctx.node), name=f"rank{ctx.rank}"
        )
        yield from invoker.allocate(jacobi_package(), workers=1, memory_bytes=1 * GiB)

        x = np.zeros(N)
        half = N // 2

        # --- accelerated solve: local top half, remote bottom half.
        start = ctx.env.now
        setup = pack_setup(a, b, x, half, N)
        in_buf = invoker.alloc_input(len(setup))
        out_buf = invoker.alloc_output(8 * (N - half))
        in_buf.write(setup)
        future = invoker.submit("jacobi", in_buf, len(setup), out_buf)
        top = jacobi_sweep(a, b, x, 0, half)
        yield from ctx.compute(jacobi_iteration_cost_ns(N, rows=half))
        result = yield future.wait()
        bottom = np.frombuffer(result.output(), dtype=np.float64)
        x = np.concatenate([top, bottom])

        for _ in range(ITERATIONS - 1):
            message = pack_iterate(x, half, N)
            iter_buf = invoker.alloc_input(len(message))
            iter_buf.write(message)
            future = invoker.submit("jacobi", iter_buf, len(message), out_buf)
            top = jacobi_sweep(a, b, x, 0, half)
            yield from ctx.compute(jacobi_iteration_cost_ns(N, rows=half))
            result = yield future.wait()
            bottom = np.frombuffer(result.output(), dtype=np.float64)
            x = np.concatenate([top, bottom])
        accelerated_ns = ctx.env.now - start

        # --- baseline: the same solve entirely local.
        start = ctx.env.now
        for _ in range(ITERATIONS):
            yield from ctx.compute(jacobi_iteration_cost_ns(N))
        baseline_ns = ctx.env.now - start

        residuals[ctx.rank] = float(np.max(np.abs(a @ x - b)))
        timings[ctx.rank] = (baseline_ns, accelerated_ns)
        yield from invoker.deallocate()

    dep.run(job.run(rank_main))

    print(f"Jacobi n={N}, {ITERATIONS} iterations, {RANKS} MPI ranks\n")
    print(f"{'rank':>4}  {'residual':>12}  {'mpi-only':>10}  {'mpi+rfaas':>10}  {'speedup':>7}")
    for rank in range(RANKS):
        baseline, accelerated = timings[rank]
        print(
            f"{rank:>4}  {residuals[rank]:12.2e}  {ns_to_ms(baseline):8.2f}ms"
            f"  {ns_to_ms(accelerated):8.2f}ms  {baseline / accelerated:6.2f}x"
        )
    assert all(res < 1e-8 for res in residuals.values()), "solver diverged!"
    print("\nall residuals < 1e-8: the offloaded halves are numerically exact")


if __name__ == "__main__":
    main()
