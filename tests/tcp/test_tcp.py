"""TCP baseline: kernel overheads, payload delivery, netperf shape."""

import pytest

from repro.rdma import Fabric
from repro.rdma.microbench import ib_write_lat
from repro.sim import Environment, us
from repro.tcp import TcpConfig, TcpNetwork, netperf_rr


def make_net():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("h1")
    fabric.attach("h2")
    return env, TcpNetwork(fabric)


def test_payload_delivered_intact():
    env, net = make_net()
    a, b = net.endpoint("h1"), net.endpoint("h2")
    got = []

    def sender():
        yield from a.send(b, 11, payload=b"hello world")

    def receiver():
        size, payload = yield b.recv()
        got.append((size, payload))

    env.process(receiver())
    env.process(sender())
    env.run()
    assert got == [(11, b"hello world")]


def test_messages_delivered_in_order():
    env, net = make_net()
    a, b = net.endpoint("h1"), net.endpoint("h2")
    got = []

    def sender():
        for i in range(5):
            yield from a.send(b, 100, payload=i)

    def receiver():
        for _ in range(5):
            _, payload = yield b.recv()
            got.append(payload)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_unknown_host_rejected():
    env, net = make_net()
    with pytest.raises(ValueError):
        net.endpoint("nope")


def test_tcp_rtt_tens_of_microseconds():
    result = netperf_rr(64, iterations=20)
    assert us(20) < result.mean_ns < us(100)


def test_tcp_much_slower_than_rdma_small_messages():
    """The Sec. II-C contrast: kernel stack vs kernel bypass."""
    tcp = netperf_rr(64, iterations=20).mean_ns
    rdma = ib_write_lat(64, iterations=20).median_ns
    assert tcp / rdma > 5


def test_tcp_single_stream_below_link_bandwidth():
    cfg = TcpConfig()
    size = 10_000_000
    extra = cfg.stream_extra_ns(size, link_bytes_per_sec=12.25e9)
    assert extra > 0  # a single stream cannot saturate the 100G link


def test_copy_cost_scales_with_size():
    cfg = TcpConfig()
    assert cfg.copy_ns(0) == 0
    assert cfg.copy_ns(2_000_000) == 2 * cfg.copy_ns(1_000_000)


def test_netperf_rtt_grows_with_size():
    small = netperf_rr(64, iterations=10).mean_ns
    large = netperf_rr(1_000_000, iterations=10).mean_ns
    assert large > small * 5
