"""Adaptive granularity + batch admission: bit-identity under pressure.

PR 6's two contracts, tested against the heap baseline:

* ``granularity_bits="auto"`` may re-anchor the wheel's geometry at
  quiescent cursor boundaries, but pops must stay in exactly the heap's
  ``(when, priority, eid)`` order -- the fuzz here *forces* re-anchors
  mid-workload (regime-switching delays, a tiny adaptation window) and
  still requires bit-identical firing sequences.
* ``schedule_batch`` must be indistinguishable from per-event admission
  of the same deadline stream, on both schedulers and any geometry.

Plus the config/CLI validation boundary and the decimated occupancy
sampler's cost bound.
"""

import random
import time

import numpy as np
import pytest

from repro.core.config import RFaaSConfig
from repro.core.deployment import Deployment
from repro.experiments.common import measure_rfaas_rtts
from repro.sim.core import Environment
from repro.sim.events import BatchEvent
from repro.sim.wheel import (
    _AUTO_INITIAL_BITS,
    _SAMPLE_DECIMATION,
    MAX_GRANULARITY_BITS,
    WheelEnvironment,
    validate_granularity_bits,
)

# -- forced re-anchors vs the heap baseline ----------------------------


def _regime_delay(rng, fired_count):
    """Delays that flip regimes so no single granularity stays in band.

    Even phases draw millisecond-scale delays (cascade-heavy at the
    256 ns auto-start geometry -> *too fine*); odd phases draw
    sub-microsecond delays (huge sort-on-drain buckets after the wheel
    widened -> *too coarse*).
    """
    if (fired_count // 300) % 2 == 0:
        return rng.randrange(2_000_000, 80_000_000)
    return rng.randrange(1, 1_500)


def _run_regime_workload(env, seed, initial=64, max_events=1_800):
    """Self-extending timeout cascade consuming the RNG in firing order."""
    rng = random.Random(seed)
    serial = iter(range(10**9))
    fired = []

    def callback(event):
        fired.append((env.now, event._value))
        if len(fired) < max_events and rng.random() < 0.7:
            child = env.timeout(_regime_delay(rng, len(fired)), next(serial))
            child.callbacks.append(callback)
            if rng.random() < 0.4:
                twin = env.timeout(_regime_delay(rng, len(fired)), next(serial))
                twin.callbacks.append(callback)

    for _ in range(initial):
        timeout = env.timeout(_regime_delay(rng, 0), next(serial))
        timeout.callbacks.append(callback)
    env.run()
    return fired


@pytest.mark.parametrize("seed", range(12))
def test_adaptive_reanchors_preserve_heap_order(seed):
    heap_fired = _run_regime_workload(Environment(), seed)
    wheel = WheelEnvironment(granularity_bits="auto")
    # Tiny adaptation window: evaluate the occupancy band every 64
    # drained events instead of every 2^15, so this small workload
    # crosses several band evaluations per regime flip.
    wheel._adapt_window = 64
    wheel_fired = _run_regime_workload(wheel, seed)
    assert wheel_fired == heap_fired
    assert len(heap_fired) > 200
    assert wheel.reanchors > 0  # the adaptive path actually exercised
    assert wheel.occupancy()["reanchors"] == wheel.reanchors


def test_auto_matches_fixed_geometry_bit_for_bit():
    auto = WheelEnvironment(granularity_bits="auto")
    auto._adapt_window = 64
    fixed = WheelEnvironment(granularity_bits=16)
    assert _run_regime_workload(auto, 3) == _run_regime_workload(fixed, 3)


# -- batch admission == per-event admission ----------------------------


def _drain_admitted(env, times, batch):
    """Admit *times* (batch or per-event), run, return the firing record.

    Per-event admission uses the same shared-descriptor BatchEvent and
    the same eid-per-deadline order ``schedule_batch`` allocates, so
    any divergence is the vectorized classification's fault.
    """
    fired = []

    def callback(event):
        fired.append((env.now, event._value))

    if batch:
        events = env.schedule_batch(np.asarray(times, dtype=np.int64), callback)
    else:
        shared = (callback,)
        events = []
        for when in times:
            event = BatchEvent(env, shared)
            env.schedule_timeout(event, when - env.now)
            events.append(event)
    for index, event in enumerate(events):
        event._value = index
    env.run()
    return fired


def _batch_envs():
    auto = WheelEnvironment(granularity_bits="auto")
    auto._adapt_window = 64
    return {
        "heap": Environment(),
        "wheel": WheelEnvironment(),
        "tiny": WheelEnvironment(granularity_bits=4, slot_bits=5, window_bits=4),
        "auto": auto,
    }


@pytest.mark.parametrize("seed", range(8))
def test_batch_admission_identical_to_per_event(seed):
    rng = random.Random(seed)
    # Duplicates and a heavy tail: spill, both levels and overflow all
    # receive segments of the chunk on the tiny geometry.
    times = sorted(rng.randrange(1, 400_000) for _ in range(600))
    records = {}
    for name, env in _batch_envs().items():
        for batch in (True, False):
            records[(name, batch)] = _drain_admitted(env, times, batch)
    baseline = records[("heap", False)]
    assert len(baseline) == len(times)
    for key, record in records.items():
        assert record == baseline, key


def test_batch_validation_rejects_bad_streams():
    for env in (Environment(), WheelEnvironment()):
        env._now = 1_000
        with pytest.raises(ValueError, match="past"):
            env.schedule_batch(np.asarray([500, 1_500], dtype=np.int64), lambda e: None)
        with pytest.raises(ValueError, match="non-decreasing"):
            env.schedule_batch(
                np.asarray([2_000, 1_500], dtype=np.int64), lambda e: None
            )
        assert env.schedule_batch(np.asarray([], dtype=np.int64), lambda e: None) == []


# -- occupancy sampling: decimation and cost bound ---------------------


def test_sample_occupancy_is_decimated():
    env = WheelEnvironment()
    calls = _SAMPLE_DECIMATION * 50
    computed = [env.sample_occupancy() for _ in range(calls)]
    published = [s for s in computed if s is not None]
    assert len(published) == calls // _SAMPLE_DECIMATION
    assert env.occupancy_samples == len(published)
    # force=True bypasses the gate without disturbing its phase.
    assert env.sample_occupancy(force=True) is not None
    assert "granularity_bits" in published[0]
    assert published[0]["reanchors"] == 0


def test_sample_occupancy_overhead_bound():
    """Gated samples must cost a small fraction of event processing.

    The scale drivers sample once per completed event; the decimation
    gate makes that affordable.  Here the *per-call* gated cost is
    required to stay under half the per-event run-loop cost on the
    same box -- combined with the 1-in-64 decimation the observability
    tax on events/sec is well below 1%.
    """
    env = WheelEnvironment()
    n = 100_000
    env.schedule_batch(
        np.arange(1, n + 1, dtype=np.int64) * 257, lambda event: None
    )
    t0 = time.perf_counter()
    env.run()
    run_wall = time.perf_counter() - t0
    sample = env.sample_occupancy
    t0 = time.perf_counter()
    for _ in range(n):
        sample()
    sample_wall = time.perf_counter() - t0
    assert sample_wall < max(run_wall, 0.005) * 0.5


# -- the config/CLI validation boundary --------------------------------


@pytest.mark.parametrize("bad", [0, -3, MAX_GRANULARITY_BITS + 1, 2.5, True, "fast"])
def test_validate_granularity_bits_rejects(bad):
    with pytest.raises(ValueError):
        validate_granularity_bits(bad)


@pytest.mark.parametrize("good", ["auto", 1, _AUTO_INITIAL_BITS, MAX_GRANULARITY_BITS])
def test_validate_granularity_bits_accepts(good):
    assert validate_granularity_bits(good) == good


# -- full-stack: RFaaSConfig.granularity_bits through Deployment -------


def test_deployment_builds_requested_geometry():
    fixed = Deployment.build(
        executors=1, clients=1,
        config=RFaaSConfig(scheduler="wheel", granularity_bits=16),
    )
    assert fixed.env._gbits == 16 and not fixed.env._adaptive
    auto = Deployment.build(
        executors=1, clients=1,
        config=RFaaSConfig(scheduler="wheel", granularity_bits="auto"),
    )
    assert auto.env._adaptive
    # Under the heap scheduler the knob is ignored, not an error.
    heap = Deployment.build(
        executors=1, clients=1,
        config=RFaaSConfig(scheduler="heap", granularity_bits=16),
    )
    assert isinstance(heap.env, Environment)
    assert not isinstance(heap.env, WheelEnvironment)
    with pytest.raises(ValueError):
        Deployment.build(config=RFaaSConfig(scheduler="wheel", granularity_bits=0))


def test_rfaas_measurement_identical_across_granularities():
    runs = {
        name: measure_rfaas_rtts(128, mode="hot", repetitions=4, config=config)
        for name, config in {
            "heap": RFaaSConfig(scheduler="heap"),
            "auto": RFaaSConfig(scheduler="wheel", granularity_bits="auto"),
            "fixed": RFaaSConfig(scheduler="wheel", granularity_bits=16),
        }.items()
    }
    assert runs["heap"].stats == runs["auto"].stats == runs["fixed"].stats
