"""ColdLane: the spin-up/reclaim calendar under the ordering contract.

The lane holds dry-pool spin-ups (ready/arrival/service int64 cells)
and idle-reclaim expiries; fires must come out in global ``(when,
eid)`` order through out-of-order admissions (fallback heap), bounded
drains (admission window), folded reclaim runs, and the keepalive-0
whole-backlog slab (``drain_spinups_all``).
"""

import numpy as np
import pytest

from repro.sim.wheel import _LANE_SCALAR_SLAB, WheelEnvironment


class Recorder:
    """Callback sink recording every fire the lane delivers."""

    def __init__(self):
        self.readies = []  # (when, arrival, service) scalar fires
        self.slabs = []  # (when_a, arrival_a, service_a) tuples
        self.reclaim_calls = []  # run lengths n per hook call

    def on_ready(self, when, arrival, service):
        self.readies.append((when, arrival, service))

    def on_ready_slab(self, when_a, arrival_a, service_a):
        self.slabs.append(
            (when_a.tolist(), arrival_a.tolist(), service_a.tolist())
        )

    def on_reclaim(self, n):
        self.reclaim_calls.append(n)

    @property
    def all_ready_whens(self):
        out = [w for w, _, _ in self.readies]
        for when_a, _, _ in self.slabs:
            out.extend(when_a)
        return out

    @property
    def spinups(self):
        out = list(self.readies)
        for when_a, arr_a, srv_a in self.slabs:
            out.extend(zip(when_a, arr_a, srv_a))
        return out


def _lane(gap=1_000_000):
    env = WheelEnvironment()
    rec = Recorder()
    lane = env.attach_cold_lane(gap, rec.on_ready, rec.on_ready_slab, rec.on_reclaim)
    return env, lane, rec


def _drain_to_empty(lane):
    while True:
        fired, _last = lane.drain(None, 0, 0)
        if not fired:
            break


def test_spinups_fire_in_admission_order():
    env, lane, rec = _lane()
    for ready in (10, 20, 30, 40):
        lane.admit(ready, ready - 5, 100)
    _drain_to_empty(lane)
    assert [w for w, _, _ in rec.readies] == [10, 20, 30, 40]
    assert len(lane) == 0


def test_behind_floor_admission_diverts_to_heap_and_still_orders():
    env, lane, rec = _lane()
    lane.admit(100, 90, 7)
    lane.admit(40, 30, 5)  # behind the floor: fallback heap
    lane.admit(150, 140, 9)
    assert lane.head_key()[0] == 40
    _drain_to_empty(lane)
    assert [w for w, _, _ in rec.readies] == [40, 100, 150]


def test_drain_respects_limit_key():
    env, lane, rec = _lane()
    eids = [lane.admit(t, t, 1) for t in (10, 20, 30)]
    # Bound strictly before the entry at when=20 (NORMAL priority).
    lane.drain(20, 1, eids[1])
    assert [w for w, _, _ in rec.readies] == [10]
    _drain_to_empty(lane)
    assert [w for w, _, _ in rec.readies] == [10, 20, 30]


def test_drain_stops_at_admission_window():
    gap = 10
    env, lane, rec = _lane(gap=gap)
    for t in range(0, 60, 2):
        lane.admit(t, t, 1)
    fired, _ = lane.drain(None, 0, 0)
    # One call never fires past first + gap: entries at > 10 wait for
    # the caller to re-read heads (where mid-drain admissions merge).
    assert fired < 30
    assert max(rec.all_ready_whens) <= gap
    _drain_to_empty(lane)
    assert len(rec.all_ready_whens) == 30


def test_reclaim_runs_fold_into_counted_hook_calls():
    env, lane, rec = _lane()
    n = 4 * _LANE_SCALAR_SLAB
    for t in range(n):
        lane.admit_reclaim(100 + t)
    _drain_to_empty(lane)
    assert sum(rec.reclaim_calls) == n
    # Vectorized folding: far fewer hook calls than expiries.
    assert len(rec.reclaim_calls) < n
    assert lane.stats()["cold_reclaim_fires"] == n


def test_spinup_reclaim_interleave_is_global_key_order():
    env, lane, rec = _lane()
    order = []
    rec.on_ready = lambda w, a, s: order.append(("spin", w))
    rec.on_reclaim = lambda n: order.append(("reclaim", n))
    lane.on_ready = rec.on_ready
    lane.on_reclaim = rec.on_reclaim
    lane.admit(10, 10, 1)
    lane.admit_reclaim(5)
    lane.admit(20, 20, 1)
    lane.admit_reclaim(15)
    while lane.fire_one() is not None:
        pass
    assert order == [("reclaim", 1), ("spin", 10), ("reclaim", 1), ("spin", 20)]


def test_drain_spinups_all_slabs_everything_including_future():
    env, lane, rec = _lane()
    n = 3 * _LANE_SCALAR_SLAB
    for t in range(n):
        lane.admit(1000 + t, t, 50)
    fired = lane.drain_spinups_all()
    assert fired == n
    assert len(lane) == 0
    # Whole backlog in one vectorized run: no scalar fires.
    assert rec.readies == []
    assert rec.all_ready_whens == [1000 + t for t in range(n)]
    stats = lane.stats()
    assert stats["cold_slabs"] == 1
    assert stats["cold_max_slab"] == n
    assert stats["cold_scalar_fires"] == 0
    assert stats["cold_spinups"] == n


def test_drain_spinups_all_small_runs_go_scalar():
    env, lane, rec = _lane()
    for t in range(5):
        lane.admit(10 + t, t, 1)
    assert lane.drain_spinups_all() == 5
    assert len(rec.readies) == 5
    assert rec.slabs == []


def test_drain_spinups_all_refuses_pending_reclaims():
    env, lane, rec = _lane()
    lane.admit(10, 10, 1)
    lane.admit_reclaim(50)
    with pytest.raises(RuntimeError, match="keepalive-0"):
        lane.drain_spinups_all()


def test_admit_reclaim_block_folds_and_orders():
    env, lane, rec = _lane()
    whens = np.arange(100, 100 + 2 * _LANE_SCALAR_SLAB, dtype=np.int64)
    base = env.reserve_eids(len(whens))
    lane.admit_reclaim_block(whens, np.arange(base, base + len(whens), dtype=np.int64))
    _drain_to_empty(lane)
    assert sum(rec.reclaim_calls) == len(whens)
    assert len(rec.reclaim_calls) < len(whens)


def test_stats_keys_complete():
    env, lane, rec = _lane()
    assert set(lane.stats()) == {
        "cold_entries",
        "cold_entries_peak",
        "cold_slabs",
        "cold_max_slab",
        "cold_scalar_fires",
        "cold_spinups",
        "cold_reclaim_fires",
        "cold_generations",
    }
    lane.admit(10, 10, 1)
    assert lane.stats()["cold_entries"] == 1
    assert lane.stats()["cold_entries_peak"] == 1
