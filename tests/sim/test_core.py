"""Unit tests for the DES kernel: environment, events, time."""

import pytest

from repro.sim import Environment, Event, StopSimulation, ms, secs, us
from repro.sim.core import EmptySchedule


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_clock_custom_start():
    env = Environment(initial_time=500)
    assert env.now == 500


def test_unit_helpers():
    assert us(1) == 1_000
    assert ms(1) == 1_000_000
    assert secs(1) == 1_000_000_000
    assert us(3.69) == 3690
    assert ms(0.0005) == 500


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)
        yield env.timeout(250)

    env.process(proc())
    env.run()
    assert env.now == 350


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_exactly():
    env = Environment()

    log = []

    def proc():
        while True:
            yield env.timeout(10)
            log.append(env.now)

    env.process(proc())
    env.run(until=35)
    assert env.now == 35
    assert log == [10, 20, 30]


def test_run_until_time_in_past_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(42)
        return "done"

    result = env.run(until=env.process(proc()))
    assert result == "done"
    assert env.now == 42


def test_run_until_already_processed_event():
    env = Environment()
    proc = env.process(iter_once(env))
    env.run()
    # Running again until the already-finished process returns instantly.
    assert env.run(until=proc) == 7


def iter_once(env):
    yield env.timeout(1)
    return 7


def test_run_until_event_never_triggered_raises():
    env = Environment()
    orphan = env.event()
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=orphan)


def test_run_empty_returns_none():
    env = Environment()
    assert env.run() is None


def test_step_on_empty_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_event_ordering_fifo_at_same_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(10)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_determinism_two_runs_identical():
    def build():
        env = Environment()
        log = []

        def ping(period, tag):
            while env.now < 1000:
                yield env.timeout(period)
                log.append((env.now, tag))

        env.process(ping(7, "x"))
        env.process(ping(13, "y"))
        env.run(until=1000)
        return log

    assert build() == build()


def test_event_succeed_value():
    env = Environment()
    evt = env.event()
    results = []

    def waiter():
        value = yield evt
        results.append(value)

    env.process(waiter())

    def trigger():
        yield env.timeout(5)
        evt.succeed("payload")

    env.process(trigger())
    env.run()
    assert results == ["payload"]
    assert evt.ok and evt.value == "payload"


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(RuntimeError):
        evt.succeed(2)
    with pytest.raises(RuntimeError):
        evt.fail(ValueError())


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_unavailable_before_trigger():
    env = Environment()
    evt = env.event()
    with pytest.raises(AttributeError):
        _ = evt.value
    with pytest.raises(AttributeError):
        _ = evt.ok


def test_unhandled_failure_crashes_simulation():
    env = Environment()
    evt = env.event()
    evt.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    evt = env.event()
    evt.defuse()
    evt.fail(ValueError("boom"))
    env.run()  # no raise


def test_failure_delivered_to_waiting_process():
    env = Environment()
    evt = env.event()
    caught = []

    def waiter():
        try:
            yield evt
        except ValueError as error:
            caught.append(str(error))

    env.process(waiter())
    evt.fail(ValueError("delivered"))
    env.run()
    assert caught == ["delivered"]


def test_add_callback_after_processed_runs_immediately():
    env = Environment()
    evt = env.event()
    evt.succeed(3)
    env.run()
    seen = []
    evt.add_callback(lambda e: seen.append(e.value))
    assert seen == [3]


def test_trigger_chains_events():
    env = Environment()
    source = env.event()
    sink = env.event()
    source.add_callback(sink.trigger)
    source.succeed("chained")
    env.run()
    assert sink.value == "chained"


def test_events_processed_counter():
    env = Environment()

    def proc():
        for _ in range(5):
            yield env.timeout(1)

    env.process(proc())
    env.run()
    assert env.events_processed >= 5


def test_stop_simulation_is_exception():
    assert issubclass(StopSimulation, Exception)


def test_peek():
    env = Environment()
    assert env.peek() is None
    env.timeout(99)
    assert env.peek() == 99


def test_peek_empty_queue_returns_none_not_sentinel():
    """Regression: peek() used to return the magic -1 for an empty
    queue, which is indistinguishable from a (bogus) scheduled time."""
    env = Environment()
    assert env.peek() is None
    env.timeout(0)
    assert env.peek() == 0  # a real time-zero event, not "empty"
    env.run()
    assert env.peek() is None
