"""Arrival-time generators: counts, monotonicity, determinism, shapes."""

import numpy as np
import pytest

from repro.sim.arrivals import DIURNAL_DAY, SHAPES, arrival_times
from repro.sim.rng import RngStreams


def _collect(shape, seed=7, count=5_000, mean_gap=1_000, **kwargs):
    rng = RngStreams(seed).stream("arrivals")
    chunks = list(arrival_times(shape, rng, count, mean_gap, **kwargs))
    return np.concatenate(chunks), chunks


@pytest.mark.parametrize("shape", SHAPES)
def test_exact_count_monotone_positive(shape):
    times, chunks = _collect(shape, chunk=512)
    assert times.size == 5_000
    assert times.dtype == np.int64
    assert times[0] >= 1
    assert (np.diff(times) >= 0).all()
    # Bounded memory: no chunk exceeds the requested size.
    assert max(c.size for c in chunks) <= 512


@pytest.mark.parametrize("shape", SHAPES)
def test_deterministic_across_repeats(shape):
    a, _ = _collect(shape, seed=11)
    b, _ = _collect(shape, seed=11)
    c, _ = _collect(shape, seed=12)
    assert (a == b).all()
    assert not (a == c).all()


def test_poisson_matches_legacy_gap_recipe():
    """The poisson generator is byte-for-byte the PR 4 driver recipe."""
    rng = RngStreams(3).stream("arrivals")
    times, _ = _collect("poisson", seed=3, count=3_000, mean_gap=250, chunk=1 << 16)
    draws = rng.exponential(250, size=3_000)
    gaps = np.maximum(draws.astype(np.int64), 1)
    assert (times == np.cumsum(gaps)).all()


def test_poisson_mean_rate():
    times, _ = _collect("poisson", count=50_000, mean_gap=1_000)
    assert times[-1] / 50_000 == pytest.approx(1_000, rel=0.05)


def test_bursty_structure():
    """burst_len arrivals per epoch, spaced exactly intra_gap apart."""
    times, _ = _collect(
        "bursty", count=4_096, mean_gap=10_000, burst_len=8, burst_intra_gap_ns=3
    )
    groups = times.reshape(-1, 8)
    assert (np.diff(groups, axis=1) == 3).all()
    # Epoch gaps dominate the intra-burst spacing on average.
    epoch_gaps = np.diff(groups[:, 0])
    assert epoch_gaps.mean() > 8 * 3


def test_bursty_monotone_at_paper_scale_params():
    """Regression: epoch gaps shorter than the burst span must not
    produce decreasing times (crashed the shard driver with a negative
    timeout delay at the 1M-invocation defaults)."""
    for seed in range(5):
        times, _ = _collect(
            "bursty",
            seed=seed,
            count=200_000,
            mean_gap=250,
            burst_len=64,
            burst_intra_gap_ns=1,
        )
        assert (np.diff(times) >= 0).all()
        assert times.size == 200_000


def test_bursty_monotone_across_chunk_boundaries():
    """Overlap clamping carries the running maximum between chunks."""
    times, chunks = _collect(
        "bursty",
        count=10_000,
        mean_gap=1,  # epoch gap ~ burst_len ns, span = 7000 ns: heavy overlap
        burst_len=8,
        burst_intra_gap_ns=1_000,
        chunk=16,
    )
    assert len(chunks) > 1
    assert (np.diff(times) >= 0).all()


def test_diurnal_monotone_with_tiny_chunks():
    """The 1-ns truncation repair carries across chunk boundaries."""
    for seed in range(20):
        times, _ = _collect("diurnal", seed=seed, count=5_000, mean_gap=100, chunk=7)
        assert (np.diff(times) >= 0).all()


def test_bursty_truncates_final_burst():
    times, _ = _collect("bursty", count=100, burst_len=64)
    assert times.size == 100  # 64 + 36, not rounded up to 128


def test_diurnal_peak_trough_ratio():
    """Arrivals concentrate in high-multiplier segments of the profile."""
    period = 240_000
    times, _ = _collect(
        "diurnal",
        count=60_000,
        mean_gap=1_000,
        diurnal_period_ns=period,
        diurnal_multipliers=DIURNAL_DAY,
    )
    segment = (times % period) // (period // len(DIURNAL_DAY))
    counts = np.bincount(segment.astype(int), minlength=len(DIURNAL_DAY))
    peak = counts[9]  # multiplier 2.00
    trough = counts[1]  # multiplier 0.20
    assert peak > 5 * trough
    # The normalized profile preserves the long-run mean rate.
    assert times[-1] / 60_000 == pytest.approx(1_000, rel=0.10)


def test_diurnal_auto_period():
    times, _ = _collect("diurnal", count=2_000, mean_gap=1_000)
    assert times.size == 2_000


def test_rejects_bad_arguments():
    rng = RngStreams(1).stream("arrivals")
    with pytest.raises(ValueError):
        next(arrival_times("sawtooth", rng, 10, 100))
    with pytest.raises(ValueError):
        next(arrival_times("poisson", rng, 0, 100))
    with pytest.raises(ValueError):
        next(arrival_times("poisson", rng, 10, 0))
    with pytest.raises(ValueError):
        next(arrival_times("bursty", rng, 10, 100, burst_len=0))
    with pytest.raises(ValueError):
        next(arrival_times("bursty", rng, 10, 100, burst_intra_gap_ns=-1))
    with pytest.raises(ValueError):
        next(arrival_times("diurnal", rng, 10, 100, diurnal_multipliers=()))
    with pytest.raises(ValueError):
        next(arrival_times("diurnal", rng, 10, 100, diurnal_multipliers=(1.0, -1.0)))
    with pytest.raises(ValueError):
        next(
            arrival_times(
                "diurnal", rng, 10, 100, diurnal_period_ns=2, diurnal_multipliers=DIURNAL_DAY
            )
        )
