"""Lease lane: struct-of-arrays calendar vs per-event execution.

The contract under test (see ``repro.sim.wheel.LeaseLane``): periodic
lease timers held as parallel int64 arrays must fire in exactly the
``(when, priority, eid)`` order that per-event scheduling would
produce -- merged against ordinary wheel pops, through re-arms,
out-of-order admissions (side blocks / fallback heap) and both drain
modes (exact scalar and vectorized slabs).  The per-event heap
``Environment`` is the referee throughout.
"""

import random

import numpy as np
import pytest

from repro.sim.core import Environment
from repro.sim.wheel import _REFILL_ARGSORT_MIN, LeaseLane, WheelEnvironment

MS = 1_000_000
INTERVAL = 64 * MS


def _random_timers(seed, n, horizon=400 * MS):
    """(start, finish) pairs with services straddling the interval."""
    rng = random.Random(seed)
    timers = []
    for _ in range(n):
        start = rng.randrange(1, horizon)
        service = rng.randrange(1, 3 * INTERVAL)
        first = start + min(service, INTERVAL)
        timers.append((start, first, start + service))
    timers.sort()
    return timers


def _heap_reference(timers, extra_timeouts=()):
    """Per-event lease chains on the heap Environment: the referee.

    Each lease is a self-re-arming Timeout chain with exactly the lane's
    semantics: fire every ``INTERVAL`` from the first deadline, final
    fire exactly at the finish time, one eid per (re)arm.
    """
    env = Environment()
    completions = []
    fired = []

    def make_chain(finish):
        def on_fire(event):
            now = env.now
            if now >= finish:
                completions.append(now)
            else:
                nxt = min(now + INTERVAL, finish)
                timeout = env.timeout(nxt - now)
                timeout.callbacks.append(on_fire)

        return on_fire

    def on_plain(event):
        fired.append((env.now, event._value))

    pending = list(timers)

    def admit_due(_event=None):
        while pending and pending[0][0] <= env.now:
            _start, first, finish = pending.pop(0)
            timeout = env.timeout(first - env.now)
            timeout.callbacks.append(make_chain(finish))

    # Admission points: one zero-delay timeout per distinct start time,
    # so eids are drawn at the same virtual times the lane test draws
    # them.
    for start, _first, _finish in timers:
        timeout = env.timeout(start)
        timeout.callbacks.append(admit_due)
    for delay, value in extra_timeouts:
        timeout = env.timeout(delay, value)
        timeout.callbacks.append(on_plain)
    env.run()
    return completions, fired, env.events_processed


def _lane_run(timers, scheduler_cls, extra_timeouts=(), **env_kwargs):
    """The same workload with leases in the lane, admitted at start."""
    env = scheduler_cls(**env_kwargs)
    lane = env.attach_lease_lane(INTERVAL)
    completions = []
    fired = []
    lane.on_complete = completions.append

    pending = list(timers)

    def admit_due(_event=None):
        while pending and pending[0][0] <= env.now:
            _start, first, finish = pending.pop(0)
            lane.admit(first, finish)

    def on_plain(event):
        fired.append((env.now, event._value))

    for start, _first, _finish in timers:
        timeout = env.timeout(start)
        timeout.callbacks.append(admit_due)
    for delay, value in extra_timeouts:
        timeout = env.timeout(delay, value)
        timeout.callbacks.append(on_plain)
    env.run()
    return completions, fired, env.events_processed


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_generic_run_matches_heap_reference(seed):
    timers = _random_timers(seed, 120)
    extra = [(random.Random(seed ^ 0xE).randrange(1, 400 * MS), i) for i in range(40)]
    ref_completions, ref_fired, ref_events = _heap_reference(timers, extra)
    completions, fired, events = _lane_run(timers, WheelEnvironment, extra)
    assert completions == ref_completions
    assert fired == ref_fired
    assert events == ref_events


def test_generic_run_matches_under_adaptive_reanchors():
    timers = _random_timers(99, 150)
    ref_completions, ref_fired, ref_events = _heap_reference(timers)
    completions, fired, events = _lane_run(
        timers, WheelEnvironment, granularity_bits="auto"
    )
    assert completions == ref_completions
    assert fired == ref_fired
    assert events == ref_events


def test_lane_ties_break_on_admission_order():
    """Equal deadlines complete in eid (admission) order."""
    env = WheelEnvironment()
    lane = env.attach_lease_lane(INTERVAL)
    seen = []

    def tagged(when):
        seen.append((when, len(seen)))

    lane.on_complete = tagged
    # Three leases finishing at the same nanosecond, admitted in order.
    for _ in range(3):
        lane.admit(5 * MS, 5 * MS)
    env.run()
    assert [w for w, _ in seen] == [5 * MS] * 3
    assert [i for _, i in seen] == [0, 1, 2]
    assert len(lane) == 0


def test_peek_and_pending_events_include_lane():
    env = WheelEnvironment()
    lane = env.attach_lease_lane(INTERVAL)
    env.timeout(10 * MS)
    lane.admit(2 * MS, 2 * MS)
    assert env.peek() == 2 * MS
    assert env.pending_events() == 2
    env.run()
    assert env.pending_events() == 0


def test_attach_twice_raises():
    env = WheelEnvironment()
    env.attach_lease_lane(INTERVAL)
    with pytest.raises(RuntimeError):
        env.attach_lease_lane(INTERVAL)
    with pytest.raises(ValueError):
        WheelEnvironment().attach_lease_lane(0)


# -- cohort admission --------------------------------------------------


def test_admit_cohort_matches_scalar_admits():
    timers = _random_timers(5, 64)
    whens = np.array([t[1] for t in timers], dtype=np.int64)
    fins = np.array([t[2] for t in timers], dtype=np.int64)
    order = np.argsort(whens, kind="stable")
    whens, fins = whens[order], fins[order]

    env_a = WheelEnvironment()
    lane_a = env_a.attach_lease_lane(INTERVAL)
    base = lane_a.admit_cohort(whens, fins)
    assert base == 0  # first ids drawn from a fresh environment
    done_a = []
    lane_a.on_complete = done_a.append
    env_a.run()

    env_b = WheelEnvironment()
    lane_b = env_b.attach_lease_lane(INTERVAL)
    for when, fin in zip(whens.tolist(), fins.tolist()):
        lane_b.admit(when, fin)
    done_b = []
    lane_b.on_complete = done_b.append
    env_b.run()

    assert done_a == done_b
    assert env_a.events_processed == env_b.events_processed


def test_admit_cohort_validation():
    env = WheelEnvironment()
    lane = env.attach_lease_lane(INTERVAL)
    # Empty cohorts admit nothing and consume no entry ids.
    assert lane.admit_cohort(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)) == -1
    assert next(env._eid) == 0
    with pytest.raises(ValueError):
        lane.admit_cohort(np.array([[1, 2]]), np.array([[3, 4]]))
    with pytest.raises(ValueError):
        lane.admit_cohort(np.array([1, 2]), np.array([3]))
    with pytest.raises(ValueError):
        lane.admit_cohort(np.array([5, 3]), np.array([9, 9]))


# -- drain contracts ---------------------------------------------------


def _drain_workload(seed, n=400):
    """Adversarial out-of-order admissions exercising every fallback:
    the nxt tail, block appends behind the floor (side blocks), and
    scalar below-floor admits (the irregular heap)."""
    rng = random.Random(seed)
    env = WheelEnvironment()
    lane = env.attach_lease_lane(INTERVAL)
    # A monotone batch first (raises the floor far ahead) ...
    whens = np.sort(
        np.array([rng.randrange(50 * MS, 300 * MS) for _ in range(n // 2)], dtype=np.int64)
    )
    fins = whens + np.array(
        [rng.randrange(1, 3 * INTERVAL) for _ in range(n // 2)], dtype=np.int64
    )
    lane.admit_cohort(whens, fins)
    # ... then admissions behind it, scalar and blockwise.
    for _ in range(n // 4):
        when = rng.randrange(1, 40 * MS)
        lane.admit(when, when + rng.randrange(0, 2 * INTERVAL))
    low = np.sort(
        np.array([rng.randrange(1, 45 * MS) for _ in range(n // 4)], dtype=np.int64)
    )
    lane.admit_cohort(low, low + INTERVAL // 2)
    return env, lane


@pytest.mark.parametrize("seed", [3, 11])
def test_drain_bulk_matches_exact(seed):
    """Relaxed bulk drains fire the same times/counts as exact drains."""
    env_a, lane_a = _drain_workload(seed)
    done_a = []
    lane_a.on_complete = done_a.append
    fired_a, bulk_a, last_a = lane_a.drain(None, 0, 0, exact=True)
    assert bulk_a == 0  # exact path invokes the callback per completion

    env_b, lane_b = _drain_workload(seed)
    done_b = []
    lane_b.on_complete = done_b.append
    fired_b, bulk_b, last_b = lane_b.drain(None, 0, 0, strict=False)
    assert fired_b == fired_a
    assert last_b == last_a
    # Bulk counts completions instead of calling back; totals and the
    # completion-time multiset must agree.
    assert len(done_b) + bulk_b == len(done_a)
    assert len(lane_a) == len(lane_b) == 0


def test_strict_drain_forces_exact_with_out_of_order_entries():
    env, lane = _drain_workload(17)
    done = []
    lane.on_complete = done.append
    fired, bulk, _last = lane.drain(None, 0, 0)  # strict default
    assert bulk == 0  # everything went through the scalar path
    assert fired > 0 and len(done) > 0


def test_drain_respects_limit_key():
    env = WheelEnvironment()
    lane = env.attach_lease_lane(INTERVAL)
    for k in range(4):
        lane.admit(10 * MS + k, 10 * MS + k)  # completions at distinct ns
    eid_limit = 2  # entries 0,1 precede (10ms+1, NORMAL, 2); 1 has dl < limit
    done = []
    lane.on_complete = done.append
    fired, _bulk, last = lane.drain(10 * MS + 1, 1, eid_limit, exact=True)
    assert fired == 2
    assert done == [10 * MS, 10 * MS + 1]
    assert last == 10 * MS + 1
    assert len(lane) == 2


def test_reserve_eids_contract():
    env = Environment()
    assert env.reserve_eids(1) == 0
    assert env.reserve_eids(5) == 1
    assert next(env._eid) == 6
    with pytest.raises(ValueError):
        env.reserve_eids(0)


# -- the argsort refill satellite --------------------------------------


def test_large_bucket_refill_matches_heap_order():
    """A bucket past _REFILL_ARGSORT_MIN sorts via lexsort; pop order
    must stay bit-identical to the heap, ties included."""
    n = _REFILL_ARGSORT_MIN + 300
    rng = random.Random(42)
    # Many duplicate timestamps inside one coarse slot to stress ties.
    delays = [rng.randrange(1, 50) * 1000 for _ in range(n)]
    orders = []
    for cls in (Environment, WheelEnvironment):
        env = cls() if cls is Environment else cls(granularity_bits=20)
        fired = []

        def on_fire(event):
            fired.append((env.now, event._value))

        for i, delay in enumerate(delays):
            timeout = env.timeout(delay, i)
            timeout.callbacks.append(on_fire)
        env.run()
        orders.append(fired)
    assert orders[0] == orders[1]
