"""Unit tests for Resource/Store/FilterStore/Container."""

import pytest

from repro.sim import Container, Environment, FilterStore, Resource, Store


# -- Resource ----------------------------------------------------------------


def test_resource_serializes_users():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(tag, hold):
        req = res.request()
        yield req
        log.append((env.now, tag, "in"))
        yield env.timeout(hold)
        res.release(req)
        log.append((env.now, tag, "out"))

    env.process(user("a", 10))
    env.process(user("b", 10))
    env.run()
    assert log == [(0, "a", "in"), (10, "a", "out"), (10, "b", "in"), (20, "b", "out")]


def test_resource_capacity_two_parallel():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def user(tag):
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)
        done.append((tag, env.now))

    for tag in "abc":
        env.process(user(tag))
    env.run()
    assert done == [("a", 10), ("b", 10), ("c", 20)]


def test_resource_with_statement_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(5)
        times.append(env.now)

    env.process(user())
    env.process(user())
    env.run()
    assert times == [5, 10]


def test_resource_count_and_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def observer():
        yield env.timeout(50)
        req = res.request()  # queued behind holder
        yield env.timeout(1)
        assert res.count == 1
        assert len(res.queue) == 1
        yield req  # served once holder releases at t=100
        res.release(req)

    env.process(holder())
    env.process(observer())
    env.run()
    assert res.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_unheld_request_is_noop():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # second release: no-op, no error

    env.process(proc())
    env.run()


# -- Store -------------------------------------------------------------------


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in (1, 2, 3):
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer():
        item = yield store.get()
        times.append((env.now, item))

    def producer():
        yield env.timeout(40)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [(40, "late")]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer():
        yield env.timeout(25)
        item = yield store.get()
        log.append((f"got-{item}", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0) in log
    assert ("put-b", 25) in log  # unblocked by the get


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_filter_store_selects_by_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def run():
        yield store.put({"id": 1})
        yield store.put({"id": 2})
        yield store.put({"id": 3})
        item = yield store.get(lambda entry: entry["id"] == 2)
        got.append(item["id"])
        item = yield store.get()
        got.append(item["id"])

    env.process(run())
    env.run()
    assert got == [2, 1]


def test_filter_store_waits_for_matching_item():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda value: value > 10)
        got.append((env.now, item))

    def producer():
        yield store.put(1)
        yield env.timeout(7)
        yield store.put(99)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(7, 99)]
    assert store.items == [1]


# -- Container ---------------------------------------------------------------


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=100, init=50)
    assert tank.level == 50

    def run():
        yield tank.get(30)
        assert tank.level == 20
        yield tank.put(60)
        assert tank.level == 80

    env.process(run())
    env.run()
    assert tank.level == 80


def test_container_get_blocks_until_refill():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    times = []

    def consumer():
        yield tank.get(10)
        times.append(env.now)

    def producer():
        yield env.timeout(33)
        yield tank.put(10)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [33]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def producer():
        yield tank.put(5)
        times.append(env.now)

    def consumer():
        yield env.timeout(12)
        yield tank.get(5)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [12]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-5)


def test_request_cancel_leaves_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    served = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def impatient():
        yield env.timeout(1)
        req = res.request()
        # Give up immediately without waiting.
        req.cancel()
        served.append("cancelled")
        yield env.timeout(1)

    def patient():
        yield env.timeout(2)
        req = res.request()
        yield req
        served.append(("patient", env.now))
        res.release(req)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    assert ("patient", 100) in served
