"""Event-system edge cases."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event


def test_trigger_on_already_triggered_is_noop():
    env = Environment()
    source = env.event()
    sink = env.event()
    sink.succeed("original")
    source.add_callback(sink.trigger)
    source.succeed("other")
    env.run()
    assert sink.value == "original"


def test_condition_defuses_late_failures():
    """A sub-event failing after the condition resolved must not crash
    the simulation (AnyOf consumed it)."""
    env = Environment()
    fast = env.timeout(1)
    slow = env.event()

    def proc():
        yield AnyOf(env, [fast, slow])

    def failer():
        yield env.timeout(10)
        slow.fail(ValueError("late"))

    env.process(proc())
    env.process(failer())
    env.run()  # no raise: the condition defused the late failure


def test_condition_requires_same_environment():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.event(), env2.event()])


def test_condition_value_mapping_interface():
    env = Environment()
    t1 = env.timeout(1, value="a")
    t2 = env.timeout(2, value="b")
    results = {}

    def proc():
        value = yield AllOf(env, [t1, t2])
        results["keys"] = value.keys()
        results["t1"] = value[t1]
        results["contains"] = t2 in value
        results["len"] = len(value)
        results["dict"] = value.todict()

    env.process(proc())
    env.run()
    assert results["keys"] == [t1, t2]
    assert results["t1"] == "a"
    assert results["contains"] is True
    assert results["len"] == 2
    assert results["dict"] == {t1: "a", t2: "b"}


def test_event_repr_states():
    env = Environment()
    event = env.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)


def test_timeout_repr_and_delay():
    env = Environment()
    timeout = env.timeout(42)
    assert timeout.delay == 42
    assert "42" in repr(timeout)


def test_process_repr():
    env = Environment()

    def named():
        yield env.timeout(1)

    process = env.process(named())
    assert "named" in repr(process)
    assert "alive" in repr(process)
    env.run()
    assert "finished" in repr(process)


def test_defused_property_readable():
    env = Environment()
    event = env.event()
    assert not event.defused
    event.defuse()
    assert event.defused
