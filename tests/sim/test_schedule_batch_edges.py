"""``schedule_batch`` edge cases, on both the heap and wheel engines.

The hardening satellite: empty chunks, single elements, all-equal
timestamps, chunks landing exactly at ``now``, chunks in the past, and
non-1-D inputs must behave identically on ``Environment`` (the
correctness baseline) and ``WheelEnvironment`` (the vectorized
override) -- errors included.
"""

import numpy as np
import pytest

from repro.sim.core import Environment
from repro.sim.wheel import WheelEnvironment


def _envs():
    return [Environment(), WheelEnvironment(), WheelEnvironment(granularity_bits="auto")]


def _fire_all(env, times):
    fired = []

    def on_fire(event):
        fired.append(env.now)

    events = env.schedule_batch(times, on_fire)
    env.run()
    return events, fired


@pytest.mark.parametrize("env", _envs())
def test_empty_chunk_is_a_noop(env):
    events = env.schedule_batch(np.empty(0, dtype=np.int64), lambda e: None)
    assert events == []
    assert env.peek() is None
    # No entry ids consumed: the next event is still id 0.
    assert next(env._eid) == 0


@pytest.mark.parametrize("env", _envs())
def test_single_element_chunk(env):
    events, fired = _fire_all(env, np.array([1_234], dtype=np.int64))
    assert len(events) == 1
    assert fired == [1_234]
    assert env.now == 1_234


@pytest.mark.parametrize("env", _envs())
def test_all_equal_timestamps_fire_in_admission_order(env):
    order = []

    def make(tag):
        def on_fire(event):
            order.append(tag)

        return on_fire

    times = np.full(8, 5_000, dtype=np.int64)
    for k in range(8):
        env.schedule_batch(times[k : k + 1], make(k))
    env.run()
    assert order == list(range(8))


@pytest.mark.parametrize("env", _envs())
def test_chunk_exactly_at_now_fires_immediately(env):
    # Advance the clock first, then admit a chunk entirely at `now`.
    env.timeout(700)
    env.run()
    assert env.now == 700
    events, fired = _fire_all(env, np.array([700, 700, 700], dtype=np.int64))
    assert fired == [700, 700, 700]


@pytest.mark.parametrize("env", _envs())
def test_chunk_in_the_past_rejected(env):
    env.timeout(1_000)
    env.run()
    with pytest.raises(ValueError, match="past"):
        env.schedule_batch(np.array([999], dtype=np.int64), lambda e: None)
    # A chunk whose *first* element is fine but that decreases is also out.
    with pytest.raises(ValueError, match="non-decreasing"):
        env.schedule_batch(np.array([2_000, 1_500], dtype=np.int64), lambda e: None)


@pytest.mark.parametrize("env", _envs())
def test_non_1d_chunk_rejected(env):
    with pytest.raises(ValueError, match="1-D"):
        env.schedule_batch(np.array([[1, 2], [3, 4]], dtype=np.int64), lambda e: None)


def test_batch_pop_order_identical_across_engines():
    times = np.sort(np.random.default_rng(9).integers(1, 10_000, 500)).astype(np.int64)
    results = []
    for env in _envs():
        fired = []

        def on_fire(event):
            fired.append(env.now)

        env.schedule_batch(times, on_fire)
        env.run()
        results.append(fired)
    assert results[0] == results[1] == results[2]
