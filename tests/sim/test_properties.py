"""Property-based tests (hypothesis) for kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, RngStreams, Store


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    """Whatever the mix of timeouts, observed firing times never go backwards."""
    env = Environment()
    observed = []

    def waiter(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(delays)


@given(delays=st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_sequential_timeouts_sum(delays):
    """A chain of timeouts ends at exactly the sum of the delays."""
    env = Environment()

    def chain():
        for delay in delays:
            yield env.timeout(delay)

    env.process(chain())
    env.run()
    assert env.now == sum(delays)


@given(
    items=st.lists(st.integers(), min_size=0, max_size=40),
    consumer_head_start=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_store_preserves_order_and_content(items, consumer_head_start):
    """Everything put into a Store comes out once, in FIFO order."""
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield env.timeout(1)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    if consumer_head_start:
        env.process(consumer())
        env.process(producer())
    else:
        env.process(producer())
        env.process(consumer())
    env.run()
    assert received == items


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_rng_streams_reproducible_and_independent(seed):
    a1 = RngStreams(seed).stream("alpha").random(8).tolist()
    a2 = RngStreams(seed).stream("alpha").random(8).tolist()
    b = RngStreams(seed).stream("beta").random(8).tolist()
    assert a1 == a2
    assert a1 != b


@given(
    n_users=st.integers(min_value=1, max_value=12),
    capacity=st.integers(min_value=1, max_value=4),
    hold=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(n_users, capacity, hold):
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=capacity)
    max_in_use = 0
    in_use = 0

    def user():
        nonlocal in_use, max_in_use
        with res.request() as req:
            yield req
            in_use += 1
            max_in_use = max(max_in_use, in_use)
            yield env.timeout(hold)
            in_use -= 1

    for _ in range(n_users):
        env.process(user())
    env.run()
    assert max_in_use <= capacity
    # With more users than slots the resource does get saturated.
    assert max_in_use == min(n_users, capacity)
