"""Timer-wheel scheduler: bit-identical ordering vs the heap baseline.

The contract under test (docstring of :mod:`repro.sim.wheel`): the
wheel is a drop-in replacement whose pops come in exactly the heap's
``(when, priority, eid)`` order.  The fuzz tests drive identical random
workloads through both schedulers -- with a deliberately tiny wheel
geometry so spill, cascade, window-jump and overflow paths all trigger
-- and require the firing sequences to match exactly.
"""

import itertools
import random

import pytest

from repro.core.config import RFaaSConfig
from repro.core.deployment import Deployment
from repro.experiments.common import measure_rfaas_rtts
from repro.sim.core import Environment
from repro.sim.events import NORMAL, Event
from repro.sim.wheel import SCHEDULERS, WheelEnvironment, new_environment
from repro.workloads.noop import noop_package

#: Tiny geometry: level-0 horizon 32 slots x 16 ns = 512 ns, level-1
#: horizon 16 windows ~ 8.2 us.  Random delays up to ~200 us constantly
#: cross every structure boundary.
TINY_WHEEL = {"granularity_bits": 4, "slot_bits": 5, "window_bits": 4}

FUZZ_SEEDS = range(60)


def _random_delay(rng):
    r = rng.random()
    if r < 0.15:
        return 0  # spill: lands at/behind the active slot
    if r < 0.55:
        return rng.randrange(1, 400)  # mostly level 0
    if r < 0.85:
        return rng.randrange(400, 8_000)  # level 1
    return rng.randrange(8_000, 200_000)  # overflow heap


def _run_workload(env, seed, initial=48, max_events=1_500):
    """Random self-extending timeout cascade; returns the firing record.

    The RNG is consumed in firing order, so two schedulers produce the
    same draws iff they fire events in the same order -- any ordering
    divergence snowballs into a different record.
    """
    rng = random.Random(seed)
    serial = itertools.count()
    fired = []

    def callback(event):
        fired.append((env.now, event._value))
        if len(fired) < max_events and rng.random() < 0.6:
            child = env.timeout(_random_delay(rng), next(serial))
            child.callbacks.append(callback)
            if rng.random() < 0.3:
                twin = env.timeout(_random_delay(rng), next(serial))
                twin.callbacks.append(callback)

    for _ in range(initial):
        timeout = env.timeout(_random_delay(rng), next(serial))
        timeout.callbacks.append(callback)
    env.run()
    return fired


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_wheel_matches_heap(seed):
    heap_fired = _run_workload(Environment(), seed)
    wheel_fired = _run_workload(WheelEnvironment(**TINY_WHEEL), seed)
    assert wheel_fired == heap_fired
    assert len(heap_fired) > 100  # the workload actually ran


@pytest.mark.parametrize("seed", range(10))
def test_fuzz_default_geometry_matches_heap(seed):
    heap_fired = _run_workload(Environment(), seed)
    wheel_fired = _run_workload(WheelEnvironment(), seed)
    assert wheel_fired == heap_fired


def test_pop_order_is_globally_sorted():
    """Raw pops come in ascending (when, priority, eid) regardless of
    which internal structure an entry landed in."""
    env = WheelEnvironment(**TINY_WHEEL)
    rng = random.Random(7)
    expected = []
    for index in range(500):
        event = Event(env)
        event._ok = True
        event._value = index
        delay = _random_delay(rng)
        priority = rng.choice((NORMAL, NORMAL, NORMAL, 5))
        env.schedule(event, delay, priority)
        # eid equals insertion index here (fresh env, no other inserts).
        expected.append((delay, priority, index))
    expected.sort()
    got = []
    while env.pending_events():
        _when, _prio, _eid, event = env._pop()
        got.append(event._value)
    assert got == [index for _, _, index in expected]


def test_overflow_beyond_horizon_lands_in_heap():
    env = WheelEnvironment(**TINY_WHEEL)
    horizon_ns = 1 << (4 + 5 + 4)  # granularity * slots * windows
    env.timeout(horizon_ns * 50)
    occupancy = env.occupancy()
    assert occupancy["heap"] == 1
    assert occupancy["wheel"] == 0
    assert env.overflow_inserts == 1


def test_cascade_counts_level1_windows():
    env = WheelEnvironment(**TINY_WHEEL)
    fired = []
    for index in range(8):
        timeout = env.timeout(600 + index * 700, index)  # past level 0
        timeout.callbacks.append(lambda ev: fired.append(ev._value))
    assert env.occupancy()["level1"] == 8
    env.run()
    assert fired == list(range(8))
    assert env.cascades > 0


def test_window_jump_skips_empty_level0():
    """A single far level-1 entry is reached without slot-by-slot scans
    (indirectly: the run terminates and fires in order)."""
    env = WheelEnvironment(granularity_bits=0, slot_bits=2, window_bits=8)
    fired = []
    timeout = env.timeout(3 * 4 + 1, "far")  # a few windows out
    timeout.callbacks.append(lambda ev: fired.append(ev._value))
    env.run()
    assert fired == ["far"]
    assert env.now == 13


def test_cursor_reanchors_after_overflow_only_schedule():
    env = WheelEnvironment(granularity_bits=0, slot_bits=2, window_bits=2)
    env.timeout(1_000)  # beyond the 16 ns horizon: overflow heap
    env.run()
    assert env.now == 1_000
    assert env.overflow_inserts == 1
    # The wheel was dry and the cursor stale; a near-future insert must
    # re-anchor into level 0 instead of leaking to the heap forever.
    env.timeout(2)
    occupancy = env.occupancy()
    assert occupancy["level0"] == 1
    assert env.overflow_inserts == 1


def test_spill_takes_zero_delay_wakeups():
    env = WheelEnvironment(**TINY_WHEEL)
    event = Event(env)
    event._ok = True
    env.schedule_timeout(event, 0)
    assert env.occupancy()["spill"] == 1


def test_run_until_time_matches_heap():
    def drive(env):
        fired = []
        for index in range(20):
            timeout = env.timeout(index * 7, index)
            timeout.callbacks.append(lambda ev: fired.append(ev._value))
        env.run(until=70)
        return fired, env.now

    assert drive(WheelEnvironment(**TINY_WHEEL)) == drive(Environment())


def test_run_until_event_and_processes():
    env = WheelEnvironment(**TINY_WHEEL)

    def proc():
        yield env.timeout(100)
        yield env.timeout(5_000)
        return "done"

    assert env.run(until=env.process(proc())) == "done"
    assert env.now == 5_100


def test_step_processes_single_event():
    env = WheelEnvironment(**TINY_WHEEL)
    env.timeout(3)
    env.timeout(9)
    env.step()
    assert env.now == 3
    assert env.pending_events() == 1


def test_peek_scans_all_structures():
    env = WheelEnvironment(**TINY_WHEEL)
    assert env.peek() is None
    env.timeout(100_000)  # overflow
    assert env.peek() == 100_000
    env.timeout(1_000)  # level 1
    assert env.peek() == 1_000
    env.timeout(17)  # level 0
    assert env.peek() == 17
    event = Event(env)
    event._ok = True
    env.schedule_timeout(event, 0)  # spill
    assert env.peek() == 0


def test_timeout_pool_recycles_through_wheel():
    env = WheelEnvironment(**TINY_WHEEL)

    def proc():
        for _ in range(50):
            yield env.timeout(10)

    env.process(proc())
    env.run()
    assert env.timeout_pool_hits > 0


def test_new_environment_registry():
    assert SCHEDULERS == ("heap", "wheel")
    assert type(new_environment()) is Environment
    assert type(new_environment("heap")) is Environment
    assert isinstance(new_environment("wheel", granularity_bits=4), WheelEnvironment)
    with pytest.raises(ValueError):
        new_environment("heap", granularity_bits=4)
    with pytest.raises(ValueError):
        new_environment("fibheap")
    with pytest.raises(ValueError):
        WheelEnvironment(slot_bits=0)


def test_negative_delay_rejected():
    env = WheelEnvironment(**TINY_WHEEL)
    with pytest.raises(ValueError):
        env.timeout(-1)
    with pytest.raises(ValueError):
        env.schedule(Event(env), -5)


# -- full-stack equivalence: the paper harnesses, heap vs wheel --------


def _invocation_run(scheduler):
    dep = Deployment.build(
        executors=1, clients=1, config=RFaaSConfig(scheduler=scheduler)
    )
    dep.settle()
    invoker = dep.new_invoker()
    package = noop_package()

    def driver():
        yield from invoker.allocate(package, workers=1)
        in_buf = invoker.alloc_input(1024)
        in_buf.write(bytes(1024))
        out_buf = invoker.alloc_output(1024)
        rtts = []
        for _ in range(25):
            future = invoker.submit("echo", in_buf, 1024, out_buf)
            result = yield future.wait()
            rtts.append(result.rtt_ns)
        return rtts

    rtts = dep.run(driver())
    return rtts, dep.env.now, dep.env.events_processed


def test_invocation_pipeline_identical_across_schedulers():
    assert _invocation_run("heap") == _invocation_run("wheel")


def test_fig8_measurement_identical_across_schedulers():
    runs = {
        scheduler: measure_rfaas_rtts(
            128,
            mode="hot",
            repetitions=6,
            config=RFaaSConfig(scheduler=scheduler),
        )
        for scheduler in SCHEDULERS
    }
    assert runs["heap"].stats == runs["wheel"].stats
