"""Unit tests for processes: suspension, return values, interrupts."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(10)
        return 123

    p = env.process(proc())
    env.run()
    assert p.value == 123
    assert not p.is_alive


def test_process_is_alive_until_done():
    env = Environment()

    def proc():
        yield env.timeout(10)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_waiting_on_another_process():
    env = Environment()

    def child():
        yield env.timeout(30)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return result

    p = env.process(parent())
    env.run()
    assert p.value == "child-result"
    assert env.now == 30


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child():
        yield env.timeout(5)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as error:
            return f"caught: {error}"

    p = env.process(parent())
    env.run()
    assert p.value == "caught: child failed"


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise KeyError("unhandled")

    env.process(proc())
    with pytest.raises(KeyError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(1000)
        except Interrupt as interrupt:
            causes.append((env.now, interrupt.cause))

    def attacker(target):
        yield env.timeout(50)
        target.interrupt("preempted")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    # Delivered at t=50; the abandoned 1000ns timeout still drains the queue.
    assert causes == [(50, "preempted")]


def test_interrupt_unsubscribes_from_target():
    env = Environment()
    resumed = []

    def victim():
        try:
            yield env.timeout(100)
            resumed.append("timeout")
        except Interrupt:
            yield env.timeout(500)
            resumed.append("after-interrupt")

    def attacker(target):
        yield env.timeout(10)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    # The original 100ns timeout must NOT also resume the process.
    assert resumed == ["after-interrupt"]
    assert env.now == 510


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def proc():
        this = env.active_process
        with pytest.raises(RuntimeError):
            this.interrupt()
        yield env.timeout(1)

    env.process(proc())
    env.run()


def test_yield_non_event_raises_inside_process():
    env = Environment()
    caught = []

    def proc():
        try:
            yield 42
        except RuntimeError as error:
            caught.append("non-event" in str(error))
        yield env.timeout(1)

    env.process(proc())
    env.run()
    assert caught == [True]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_all_of_collects_values_in_order():
    env = Environment()

    def proc():
        t1 = env.timeout(30, value="slow")
        t2 = env.timeout(10, value="fast")
        result = yield AllOf(env, [t1, t2])
        return result.values()

    p = env.process(proc())
    env.run()
    # Values in event-list order, not completion order.
    assert p.value == ["slow", "fast"]
    assert env.now == 30


def test_all_of_empty_is_immediate():
    env = Environment()

    def proc():
        result = yield AllOf(env, [])
        return len(result)

    p = env.process(proc())
    env.run()
    assert p.value == 0


def test_any_of_returns_first():
    env = Environment()

    def proc():
        t1 = env.timeout(30, value="slow")
        t2 = env.timeout(10, value="fast")
        result = yield AnyOf(env, [t1, t2])
        return (env.now, result.values())

    p = env.process(proc())
    env.run()
    assert p.value == (10, ["fast"])


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        AnyOf(env, [])


def test_all_of_failure_propagates():
    env = Environment()
    evt = env.event()

    def proc():
        t = env.timeout(5)
        try:
            yield AllOf(env, [t, evt])
        except ValueError:
            return "failed"

    def failer():
        yield env.timeout(2)
        evt.fail(ValueError("sub-event failed"))

    p = env.process(proc())
    env.process(failer())
    env.run()
    assert p.value == "failed"


def test_env_helpers_all_of_any_of():
    env = Environment()

    def proc():
        yield env.all_of([env.timeout(5), env.timeout(6)])
        yield env.any_of([env.timeout(100), env.timeout(1)])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 7


def test_nested_processes_timing():
    env = Environment()

    def level2():
        yield env.timeout(10)
        return 2

    def level1():
        value = yield env.process(level2())
        yield env.timeout(5)
        return value + 1

    def level0():
        value = yield env.process(level1())
        return value + 1

    p = env.process(level0())
    env.run()
    assert p.value == 4
    assert env.now == 15
