"""Recorder and Span instrumentation helpers."""

import pytest

from repro.sim import Environment
from repro.sim.trace import Recorder, Span


def test_recorder_collects_timestamped_samples():
    env = Environment()
    recorder = Recorder(env)

    def proc():
        recorder.record("latency", 10.0)
        yield env.timeout(5)
        recorder.record("latency", 20.0)
        recorder.record("throughput", 1.0)

    env.process(proc())
    env.run()
    assert recorder.values("latency") == [10.0, 20.0]
    samples = recorder.samples("latency")
    assert [s.time for s in samples] == [0, 5]
    assert recorder.series_names() == ["latency", "throughput"]


def test_recorder_clear():
    env = Environment()
    recorder = Recorder(env)
    recorder.record("a", 1)
    recorder.record("b", 2)
    recorder.clear("a")
    assert recorder.values("a") == []
    assert recorder.values("b") == [2]
    recorder.clear()
    assert recorder.series_names() == []


def test_span_measures_elapsed_virtual_time():
    env = Environment()
    span = Span(env)

    def proc():
        span.start()
        yield env.timeout(100)
        lap = span.stop()
        assert lap == 100
        span.start()
        yield env.timeout(50)
        span.stop()

    env.process(proc())
    env.run()
    assert span.elapsed == 150
    assert span.laps == [100, 50]


def test_span_stop_without_start_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        Span(env).stop()
