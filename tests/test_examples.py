"""Smoke tests: every example script runs clean end-to-end.

Examples are the first thing a new user executes; these tests keep them
from rotting as the library evolves.  Each runs in its own interpreter,
exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "cold start breakdown" in out
    assert "hello rfaas" in out
    assert "billing:" in out


def test_ml_inference_service():
    out = run_example("ml_inference_service.py")
    assert "pipeline speedup over AWS Lambda" in out


def test_hpc_offload():
    out = run_example("hpc_offload.py")
    assert "numerically exact" in out


def test_workflow_pipeline():
    out = run_example("workflow_pipeline.py")
    assert "report: channels" in out
    assert "makespan" in out


def test_opportunistic_cluster():
    out = run_example("opportunistic_cluster.py")
    assert "harvest tenant" in out
    assert "options priced" in out


def test_every_example_has_a_smoke_test():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    covered = {
        "quickstart.py",
        "ml_inference_service.py",
        "hpc_offload.py",
        "workflow_pipeline.py",
        "opportunistic_cluster.py",
    }
    assert scripts == covered
