"""Churn-stream calendar properties (repro.cluster.churn)."""

import numpy as np
import pytest

from repro.cluster.churn import ChurnStream, churn_stream


def stream(deaths=50, seed=3, **kwargs):
    rng = np.random.default_rng(seed)
    defaults = dict(executors=64, horizon_ns=10_000_000, downtime_ns=50_004)
    defaults.update(kwargs)
    return churn_stream(rng, deaths, **defaults)


def test_deterministic_for_same_seed():
    a, b = stream(), stream()
    assert np.array_equal(a.death_times_ns, b.death_times_ns)
    assert np.array_equal(a.victims, b.victims)


def test_death_times_on_residue_and_strictly_increasing():
    s = stream(deaths=200)
    assert np.all(s.death_times_ns % 16 == 4)
    gaps = np.diff(s.death_times_ns)
    assert np.all(gaps >= 16)


def test_custom_residue_grid():
    s = stream(deaths=40, quantum=8, death_residue=3)
    assert np.all(s.death_times_ns % 8 == 3)
    assert np.all(np.diff(s.death_times_ns) >= 8)


def test_victims_in_range_and_len():
    s = stream(deaths=100, executors=7)
    assert len(s) == 100
    assert s.victims.min() >= 0 and s.victims.max() < 7


def test_zero_deaths_is_empty():
    s = stream(deaths=0)
    assert len(s) == 0
    assert s.death_times_ns.size == 0 and s.victims.size == 0
    assert isinstance(s, ChurnStream)


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        churn_stream(rng, -1, 4, 1000, 16)
    with pytest.raises(ValueError):
        churn_stream(rng, 1, 0, 1000, 16)
    with pytest.raises(ValueError):
        churn_stream(rng, 1, 4, 1000, 16, quantum=16, death_residue=16)
