"""Batch scheduler tests: FCFS, backfill, utilization, Fig. 2 bands."""

import pytest

from repro.cluster import (
    BatchJob,
    BatchScheduler,
    PizDaintWorkload,
    UtilizationSampler,
    WorkloadConfig,
    idle_windows,
)
from repro.cluster.utilization import UtilizationSample
from repro.sim import Environment, GiB, secs


def make_sched(nodes=10):
    env = Environment()
    return env, BatchScheduler(env, nodes, 377 * GiB)


def job(arrival_s, nodes, walltime_s, mem_gb=64):
    return BatchJob(
        arrival_ns=secs(arrival_s),
        nodes=nodes,
        walltime_ns=secs(walltime_s),
        memory_per_node=mem_gb * GiB,
    )


def test_single_job_lifecycle():
    env, sched = make_sched()
    j = job(0, 4, 100)
    env.process(sched.run_trace([j]))
    env.run()
    assert j.started_ns == 0
    assert j.finished_ns == secs(100)
    assert sched.completed == [j]
    assert sched.free_nodes == 10


def test_fcfs_queueing():
    env, sched = make_sched(nodes=4)
    j1 = job(0, 4, 100)
    j2 = job(1, 4, 50)
    env.process(sched.run_trace([j1, j2]))
    env.run()
    assert j2.started_ns == j1.finished_ns
    assert j2.wait_ns == secs(99)


def test_backfill_small_job_jumps_queue():
    env, sched = make_sched(nodes=4)
    j1 = job(0, 3, 100)  # leaves 1 node free
    j2 = job(1, 4, 50)  # head of queue: must wait for all 4
    j3 = job(2, 1, 10)  # backfills into the free node
    env.process(sched.run_trace([j1, j2, j3]))
    env.run()
    assert j3.started_ns == secs(2)  # immediately on arrival
    assert j2.started_ns == secs(100)


def test_oversized_job_rejected():
    env, sched = make_sched(nodes=4)
    with pytest.raises(ValueError):
        sched.submit(job(0, 5, 10))
    with pytest.raises(ValueError):
        sched.submit(job(0, 0, 10))


def test_memory_accounting_tracks_running_jobs():
    env, sched = make_sched(nodes=10)
    j = job(0, 2, 100, mem_gb=100)
    env.process(sched.run_trace([j]))
    env.run(until=secs(50))
    assert sched.used_memory == 2 * 100 * GiB
    assert 0 < sched.memory_utilization < 1
    env.run()
    assert sched.used_memory == 0


def test_utilization_metrics_bounds():
    env, sched = make_sched(nodes=4)
    env.process(sched.run_trace([job(0, 2, 100)]))
    env.run(until=secs(10))
    assert sched.busy_nodes == 2
    assert sched.node_utilization == 0.5


def test_sampler_records_at_interval():
    env, sched = make_sched()
    sampler = UtilizationSampler(env, sched, interval_ns=secs(60), until_ns=secs(600))
    env.process(sched.run_trace([job(0, 5, 300)]))
    env.run(until=secs(600))
    assert len(sampler.samples) == 10
    # samples[0] is taken at t=0 before the trace submits; by the next
    # minute the 5-node job is running.
    assert sampler.samples[1].busy_nodes == 5
    assert sampler.samples[-1].busy_nodes == 0


def test_idle_windows_extraction():
    def sample(t_min, idle):
        return UtilizationSample(
            time_ns=secs(60 * t_min),
            busy_nodes=10 - idle,
            total_nodes=10,
            memory_utilization=0.2,
        )

    samples = [sample(0, 0), sample(1, 2), sample(2, 2), sample(3, 0), sample(4, 1)]
    windows = idle_windows(samples, threshold_nodes=1)
    assert windows == [secs(60), 0]
    assert idle_windows([], 1) == []


def test_piz_daint_workload_reproducible():
    cfg = WorkloadConfig(total_nodes=100, duration_ns=secs(6 * 3600))
    a = PizDaintWorkload(cfg).generate()
    b = PizDaintWorkload(cfg).generate()
    assert len(a) == len(b) > 10
    assert [(j.arrival_ns, j.nodes, j.walltime_ns) for j in a] == [
        (j.arrival_ns, j.nodes, j.walltime_ns) for j in b
    ]


def test_fig2_utilization_bands():
    """The headline Fig. 2 shape: high node use, low memory use."""
    cfg = WorkloadConfig(total_nodes=300, duration_ns=secs(24 * 3600))
    jobs = PizDaintWorkload(cfg).generate()
    env = Environment()
    sched = BatchScheduler(env, cfg.total_nodes, cfg.node_memory_bytes)
    sampler = UtilizationSampler(env, sched, until_ns=cfg.duration_ns)
    env.process(sched.run_trace(jobs))
    env.run(until=cfg.duration_ns)
    # Skip the first two hours of ramp-up.
    steady = [s for s in sampler.samples if s.time_ns > secs(2 * 3600)]
    node_util = sum(s.node_utilization for s in steady) / len(steady)
    mem_util = sum(s.memory_utilization for s in steady) / len(steady)
    assert 0.80 <= node_util <= 0.97
    assert mem_util <= 0.40  # most memory idle
