"""Node tests: claims, accounting, compute-time model."""

import pytest

from repro.cluster import Node, NodeSpec
from repro.sim import Environment, GiB


def make_node(cores=4, memory=8 * GiB):
    env = Environment()
    return env, Node(env, "n0", NodeSpec(cores=cores, memory_bytes=memory))


def test_claim_and_release_accounting():
    env, node = make_node()
    claim = node.try_claim(cores=2, memory_bytes=1 * GiB)
    assert claim is not None
    assert node.free_cores == 2
    assert node.free_memory == 7 * GiB
    assert node.used_memory == 1 * GiB
    claim.release()
    assert node.free_cores == 4
    assert node.free_memory == 8 * GiB


def test_claim_release_idempotent():
    env, node = make_node()
    claim = node.try_claim(2, GiB)
    claim.release()
    claim.release()
    assert node.free_cores == 4
    assert node.free_memory == 8 * GiB


def test_overclaim_cores_returns_none():
    env, node = make_node(cores=2)
    assert node.try_claim(3, 0 * GiB + 1) is None
    # Nothing leaked by the failed attempt.
    assert node.free_cores == 2
    assert node.free_memory == 8 * GiB


def test_overclaim_memory_returns_none():
    env, node = make_node()
    assert node.try_claim(1, 9 * GiB) is None
    assert node.free_cores == 4


def test_sequential_claims_until_exhaustion():
    env, node = make_node(cores=3)
    claims = [node.try_claim(1, GiB) for _ in range(3)]
    assert all(claims)
    assert node.try_claim(1, GiB) is None
    claims[0].release()
    assert node.try_claim(1, GiB) is not None


def test_compute_time_model():
    env, node = make_node()
    spec = node.spec
    one_second_of_flops = spec.flops_per_core
    assert node.compute_time_ns(one_second_of_flops) == pytest.approx(1e9, rel=1e-6)
    # Two cores halve the time; efficiency scales it back up.
    assert node.compute_time_ns(one_second_of_flops, cores=2) == pytest.approx(0.5e9, rel=1e-6)
    assert node.compute_time_ns(one_second_of_flops, efficiency=0.5) == pytest.approx(2e9, rel=1e-6)
    assert node.compute_time_ns(0) == 0


def test_stream_time_model():
    env, node = make_node()
    nbytes = node.spec.mem_bw_per_core
    assert node.stream_time_ns(nbytes) == pytest.approx(1e9, rel=1e-6)
    assert node.stream_time_ns(0) == 0


def test_default_spec_matches_testbed():
    spec = NodeSpec()
    assert spec.cores == 36  # 2 x 18-core Xeon Gold 6154
    assert spec.memory_bytes == 377 * GiB
