"""Harvest controller: donation, retirement under demand, accounting."""

import pytest

from repro.cluster import BatchJob, BatchScheduler
from repro.cluster.harvest import HarvestController
from repro.cluster.node import NodeSpec
from repro.core import Deployment, LeaseExpired, RFaaSConfig
from repro.sim import GiB, secs

from tests.core.conftest import make_package


def build(total_nodes=10, reserve=2, max_donated=4, poll_s=5):
    dep = Deployment.build(executors=0, managers=1, clients=1)
    scheduler = BatchScheduler(dep.env, total_nodes, 377 * GiB)
    controller = HarvestController(
        scheduler,
        dep.fabric,
        dep.managers[0],
        config=dep.config,
        reserve_nodes=reserve,
        max_donated=max_donated,
        poll_interval_ns=secs(poll_s),
    )
    # Donated executors must see the deployment's package registry.
    dep.managers[0].package_registry = dep.package_registry
    return dep, scheduler, controller


def job(arrival_s, nodes, walltime_s):
    return BatchJob(
        arrival_ns=secs(arrival_s),
        nodes=nodes,
        walltime_ns=secs(walltime_s),
        memory_per_node=64 * GiB,
    )


def test_idle_nodes_get_donated():
    dep, scheduler, controller = build()
    dep.env.run(until=secs(30))
    assert controller.donated_count == 4  # capped at max_donated
    assert scheduler.borrowed_nodes == 4
    assert scheduler.free_nodes == 6
    record_names = set(dep.managers[0].executors)
    assert len(record_names) == 4


def test_reserve_is_respected():
    dep, scheduler, controller = build(total_nodes=5, reserve=3, max_donated=8)
    dep.env.run(until=secs(30))
    assert controller.donated_count == 2
    assert scheduler.free_nodes == 3


def test_demand_triggers_retirement():
    dep, scheduler, controller = build(total_nodes=10, reserve=2, max_donated=6)
    dep.env.run(until=secs(30))
    assert controller.donated_count == 6
    # A big job arrives needing 8 nodes: only 2 are free -> it queues,
    # and the controller must hand nodes back.
    dep.env.process(scheduler.run_trace([job(31, 8, 100)]))
    dep.env.run(until=secs(60))
    assert scheduler.queue == [] or scheduler.running  # job scheduled
    big = (scheduler.running + scheduler.completed)[0]
    assert big.started_ns is not None
    assert controller.donated_count <= 2
    assert controller.stats.retirements >= 4


def test_harvested_executors_actually_serve_functions():
    dep, scheduler, controller = build()
    dep.env.run(until=secs(30))
    invoker = dep.new_invoker()
    package = make_package()

    def driver():
        yield from invoker.allocate(package, workers=2)
        out = yield from invoker.invoke("echo", b"harvested!")
        return out

    assert dep.run(driver()) == b"harvested!"


def test_retirement_terminates_tenant_leases():
    dep, scheduler, controller = build(total_nodes=6, reserve=1, max_donated=2)
    dep.env.run(until=secs(30))
    invoker = dep.new_invoker()
    package = make_package()

    def phase1():
        yield from invoker.allocate(package, workers=1, timeout_ns=secs(3600))
        return next(iter(invoker.leases))

    lease_id = dep.run(phase1())
    # Batch pressure: a job wanting every node forces full retirement.
    dep.env.process(scheduler.run_trace([job(40, 6, 50)]))
    dep.env.run(until=secs(80))  # while the big job is still running
    assert lease_id in invoker.terminated_leases
    assert invoker.live_workers == 0
    assert controller.donated_count == 0
    assert controller.stats.retirements == 2
    # After the job drains, the controller starts donating again.
    dep.env.run(until=secs(150))
    assert controller.donated_count == 2


def test_stats_accumulate_node_time():
    dep, scheduler, controller = build(total_nodes=4, reserve=0, max_donated=2, poll_s=2)
    dep.env.run(until=secs(20))
    controller.stop()
    dep.env.run(until=secs(40))
    assert controller.stats.donations == 2
    assert controller.stats.retirements == 2
    assert controller.stats.node_ns_donated > 0
    assert scheduler.borrowed_nodes == 0


def test_borrow_return_bookkeeping():
    dep, scheduler, _ = build()
    assert scheduler.borrow_node()
    assert scheduler.borrowed_nodes == 1
    scheduler.return_node()
    assert scheduler.borrowed_nodes == 0
    with pytest.raises(ValueError):
        scheduler.return_node()
