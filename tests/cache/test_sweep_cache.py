"""Sweep + cache: resume-after-interrupt is O(changed points)."""

from repro.analysis.sweep import ParallelSweep, Sweep
from repro.cache import ResultCache
from tests.parallel import factories


def test_sweep_resume_runs_only_new_points(tmp_path):
    cache_dir = tmp_path / "cache"
    factories.CALLS["counted_double"] = 0

    # "Interrupted" first pass covered a prefix of the grid.
    first = Sweep(factories.counted_double, cache=cache_dir)
    first.run(x=[1, 2])
    assert factories.CALLS["counted_double"] == 2

    # The re-run resumes: cached points load, only x=3 executes.
    second = Sweep(factories.counted_double, cache=cache_dir)
    second.run(x=[1, 2, 3])
    assert [p.result for p in second.points] == [2, 4, 6]
    assert factories.CALLS["counted_double"] == 3


def test_sweep_accepts_cache_instance_and_path(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    by_instance = Sweep(factories.double, cache=cache).run(x=[1, 2])
    assert [p.result for p in by_instance.points] == [2, 4]
    by_path = Sweep(factories.double, cache=tmp_path / "cache").run(x=[1, 2])
    assert [p.result for p in by_path.points] == [2, 4]
    assert by_path.cache.stats()["session"]["hits"] == 2


def test_cached_sweep_matches_uncached(tmp_path):
    axes = {"x": [1, 2], "y": [10, 20]}
    plain = Sweep(factories.combine, seed_arg="seed").run(**axes)
    cached = Sweep(factories.combine, seed_arg="seed", cache=tmp_path / "c").run(**axes)
    warm = Sweep(factories.combine, seed_arg="seed", cache=tmp_path / "c").run(**axes)
    results = lambda sweep: [p.result for p in sweep.points]  # noqa: E731
    assert results(plain) == results(cached) == results(warm)


def test_cached_sweep_captures_failures_as_data(tmp_path):
    sweep = Sweep(factories.boom_for, cache=tmp_path / "c")
    sweep.run(x=[1, 2, 3], bad=[2])
    assert [p.result for p in sweep.points if not p.failed] == [10, 30]
    assert len(sweep.failures()) == 1
    # Failures are never cached: a fixed re-run would execute them again.
    assert sweep.cache.stats()["entries"] == 2


def test_parallel_sweep_with_cache(tmp_path):
    cold = ParallelSweep(factories.double, parallel=2, cache=tmp_path / "c")
    cold.run(x=[1, 2, 3])
    warm = ParallelSweep(factories.double, parallel=2, cache=tmp_path / "c")
    warm.run(x=[1, 2, 3])
    assert [p.result for p in warm.points] == [2, 4, 6]
    assert warm.cache.stats()["session"]["hits"] == 3


def test_lambda_sweep_falls_back_uncached(tmp_path):
    sweep = Sweep(lambda x: x + 1, cache=tmp_path / "c")
    sweep.run(x=[1, 2])
    assert [p.result for p in sweep.points] == [2, 3]
    # Nothing was cached: lambdas have no content identity.
    assert not (tmp_path / "c" / "index.json").exists() or ResultCache(
        tmp_path / "c"
    ).stats()["entries"] == 0
