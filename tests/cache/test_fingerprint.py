"""Key derivation: canonical kwargs, code closures, edit invalidation."""

import sys
import textwrap

import pytest

from repro.cache import fingerprint
from repro.cache.fingerprint import (
    Uncacheable,
    canonical,
    code_fingerprint,
    source_closure,
    spec_key,
)
from repro.parallel import RunSpec


# --------------------------------------------------------------- canonical


def test_canonical_is_dict_order_independent():
    assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})


def test_canonical_distinguishes_collection_types():
    assert canonical([1, 2]) != canonical((1, 2))
    assert canonical({1, 2}) == canonical({2, 1})
    assert canonical(1) != canonical(1.0)
    assert canonical(True) != canonical(1)


def test_canonical_nested_structures():
    value = {"sizes": (2, 128), "opts": {"quick": True, "reps": [1, 2]}}
    assert canonical(value) == canonical(
        {"opts": {"reps": [1, 2], "quick": True}, "sizes": (2, 128)}
    )


def test_canonical_rejects_arbitrary_objects():
    with pytest.raises(Uncacheable):
        canonical(object())
    with pytest.raises(Uncacheable):
        canonical({"fn": lambda: None})


# ---------------------------------------------------------------- spec keys


def test_spec_key_stable_and_sensitive():
    spec = RunSpec("tests.parallel.factories:double", {"x": 1}, index=3, label="a")
    same = RunSpec("tests.parallel.factories:double", {"x": 1}, index=9, label="b")
    other = RunSpec("tests.parallel.factories:double", {"x": 2})
    # index/label are presentation metadata, not identity.
    assert spec_key(spec) == spec_key(same)
    assert spec_key(spec) != spec_key(other)


def test_spec_key_includes_injected_seed():
    base = RunSpec("tests.parallel.factories:combine", {"x": 1, "y": 2})
    seeded = RunSpec(
        "tests.parallel.factories:combine", {"x": 1, "y": 2}, seed=7, seed_arg="seed"
    )
    reseeded = RunSpec(
        "tests.parallel.factories:combine", {"x": 1, "y": 2}, seed=8, seed_arg="seed"
    )
    assert spec_key(base) != spec_key(seeded)
    assert spec_key(seeded) != spec_key(reseeded)


def test_spec_key_rejects_uncacheable_kwargs():
    spec = RunSpec("tests.parallel.factories:double", {"x": object()})
    with pytest.raises(Uncacheable):
        spec_key(spec)


# ------------------------------------------------------------ code closures


def test_repro_closure_is_transitive():
    closure = source_closure("repro.experiments.registry")
    # registry -> experiments harnesses -> core/rdma/sim: deep
    # dependencies must participate in the fingerprint.
    assert "repro.experiments.registry" in closure
    assert "repro.experiments.fig8" in closure
    assert any(name.startswith("repro.sim") for name in closure)
    assert any(name.startswith("repro.rdma") for name in closure)


def test_function_body_imports_are_followed():
    # bench imports repro.rdma.microbench only inside a function body.
    closure = source_closure("repro.experiments.bench")
    assert "repro.rdma.microbench" in closure


@pytest.fixture
def fake_package(tmp_path, monkeypatch):
    """A tiny importable package with an internal dependency edge."""
    pkg = tmp_path / "fakecachepkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "helper.py").write_text("VALUE = 1\n")
    (pkg / "unrelated.py").write_text("OTHER = 99\n")
    (pkg / "factory.py").write_text(
        textwrap.dedent(
            """
            from fakecachepkg.helper import VALUE

            def make(x):
                return x + VALUE
            """
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    import importlib

    importlib.invalidate_caches()
    yield pkg
    fingerprint.clear_memo()
    for name in list(sys.modules):
        if name.startswith("fakecachepkg"):
            del sys.modules[name]


def test_editing_imported_source_invalidates(fake_package):
    roots = ("fakecachepkg",)
    before = code_fingerprint("fakecachepkg.factory", roots)
    fingerprint.clear_memo()
    assert code_fingerprint("fakecachepkg.factory", roots) == before

    (fake_package / "helper.py").write_text("VALUE = 2\n")
    fingerprint.clear_memo()
    after = code_fingerprint("fakecachepkg.factory", roots)
    assert after != before


def test_editing_unimported_source_does_not_invalidate(fake_package):
    roots = ("fakecachepkg",)
    before = code_fingerprint("fakecachepkg.factory", roots)
    (fake_package / "unrelated.py").write_text("OTHER = -1\n")
    fingerprint.clear_memo()
    assert code_fingerprint("fakecachepkg.factory", roots) == before


def test_fingerprint_is_memoized_per_process(fake_package):
    roots = ("fakecachepkg",)
    before = code_fingerprint("fakecachepkg.factory", roots)
    # Without clearing the memo the (stale) cached digest is returned:
    # sources are fingerprinted once per process by design.
    (fake_package / "helper.py").write_text("VALUE = 3\n")
    assert code_fingerprint("fakecachepkg.factory", roots) == before
    fingerprint.clear_memo()
    assert code_fingerprint("fakecachepkg.factory", roots) != before
