"""Engine integration: hits fill slots in order, misses run, failures skip."""

import pytest

from repro import perf
from repro.cache import ResultCache, semantic_projection
from repro.parallel import FailedPoint, RunSpec, run_specs
from tests.parallel import factories


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def specs_for(xs):
    return [
        RunSpec("tests.parallel.factories:double", {"x": x}, index=i)
        for i, x in enumerate(xs)
    ]


def test_cold_then_warm_is_identical(cache):
    specs = specs_for([1, 2, 3])
    cold = run_specs(specs, 1, cache=cache)
    warm = run_specs(specs, 1, cache=cache)
    assert cold == warm == [2, 4, 6]
    stats = cache.stats()["session"]
    assert stats["misses"] == 3 and stats["hits"] == 3


def test_mixed_hits_and_misses_preserve_order(cache):
    run_specs(specs_for([2, 4]), 1, cache=cache)  # prime a subset
    outcomes = run_specs(specs_for([1, 2, 3, 4, 5]), 1, cache=cache)
    assert outcomes == [2, 4, 6, 8, 10]
    stats = cache.stats()["session"]
    assert stats["hits"] == 2  # x=2 and x=4 came from disk
    assert stats["misses"] == 2 + 3  # priming misses + the three new points


def test_failed_points_are_never_cached(cache):
    bad = [RunSpec("tests.parallel.factories:boom", {"x": 1})]
    first = run_specs(bad, 1, cache=cache)
    second = run_specs(bad, 1, cache=cache)
    assert isinstance(first[0], FailedPoint)
    assert isinstance(second[0], FailedPoint)
    assert cache.stats()["entries"] == 0
    assert cache.stats()["session"]["misses"] == 2  # re-ran both times


def test_uncacheable_kwargs_still_run(cache):
    token = object()
    specs = [
        RunSpec("tests.parallel.factories:combine", {"x": token, "y": 1}),
        RunSpec("tests.parallel.factories:combine", {"x": 5, "y": 1}),
    ]
    outcomes = run_specs(specs, 1, cache=cache)
    assert outcomes[0] == (token, 1, None)
    assert outcomes[1] == (5, 1, None)
    assert cache.stats()["entries"] == 1  # only the canonical spec cached
    # Uncacheable specs neither hit nor miss: they bypass the cache.
    assert cache.stats()["session"]["misses"] == 1


def test_cache_disabled_touches_no_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_specs(specs_for([1, 2]), 1)
    assert not (tmp_path / ".repro-cache").exists()


def test_hits_merge_stored_perf_counters(cache):
    spec = [RunSpec("tests.parallel.factories:count_pooled_timeouts", {})]
    perf.reset()
    perf.enable()
    try:
        run_specs(spec, 1, cache=cache)
        cold = perf.snapshot()
        assert cold["alloc_avoided"] > 0
        run_specs(spec, 1, cache=cache)
        warm = perf.snapshot()
    finally:
        perf.disable()
        perf.reset()
    # The warm pass merged the stored run's counters: same contribution
    # as executing, plus exactly one cache hit.
    assert warm["alloc_avoided"] == 2 * cold["alloc_avoided"]
    assert warm["cache_hits"] == 1
    assert warm["cache_misses"] == 1
    assert warm["cache_bytes_read"] > 0


def test_parallel_workers_with_cache(cache):
    specs = specs_for([1, 2, 3, 4])
    cold = run_specs(specs, 2, cache=cache)
    warm = run_specs(specs, 2, cache=cache)
    assert cold == warm == [2, 4, 6, 8]
    assert cache.stats()["session"]["hits"] == 4


def test_fault_rng_draw_order_unchanged_by_cache(cache):
    """The cache layer must not perturb FaultModel draws (satellite)."""
    spec = [
        RunSpec(
            "tests.parallel.factories:faulty_rtts",
            {"probability": 0.08, "seed": 5, "invocations": 30},
        )
    ]
    uncached = run_specs(spec, 1)
    cold = run_specs(spec, 1, cache=cache)
    warm = run_specs(spec, 1, cache=cache)
    assert uncached == cold == warm
    assert uncached[0]["faults_injected"] > 0
    assert semantic_projection(uncached) == semantic_projection(warm)
