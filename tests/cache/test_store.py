"""Store robustness: atomic artifacts, corruption tolerance, LRU cap."""

import json
import pickle

from repro.cache import STORE_SCHEMA, ResultCache
from repro.parallel import RunSpec


def make_cache(tmp_path, **kwargs):
    return ResultCache(tmp_path / "cache", **kwargs)


def test_roundtrip_and_layout(tmp_path):
    cache = make_cache(tmp_path)
    spec = RunSpec("tests.parallel.factories:double", {"x": 2})
    key = cache.key_for(spec)
    assert cache.store(key, {"answer": 4}, spec=spec)

    hit, value, _ = cache.lookup(key)
    assert hit and value == {"answer": 4}
    artifact = cache.root / "objects" / key[:2] / f"{key}.pkl"
    assert artifact.is_file()
    index = json.loads((cache.root / "index.json").read_text())
    assert index["schema"] == STORE_SCHEMA
    assert index["entries"][key]["spec"]["factory"] == spec.factory


def test_lookup_survives_across_instances(tmp_path):
    first = make_cache(tmp_path)
    key = "ab" + "0" * 62
    first.store(key, [1, 2, 3])
    second = make_cache(tmp_path)
    hit, value, _ = second.lookup(key)
    assert hit and value == [1, 2, 3]


def test_corrupt_artifact_is_a_miss_not_a_crash(tmp_path):
    cache = make_cache(tmp_path)
    key = "cd" + "0" * 62
    cache.store(key, {"big": list(range(100))})
    artifact = cache.root / "objects" / key[:2] / f"{key}.pkl"
    artifact.write_bytes(artifact.read_bytes()[:20])  # truncate mid-pickle

    hit, value, _ = cache.lookup(key)
    assert not hit and value is None
    # The remains were dropped: entry gone, next lookup a clean miss.
    assert key not in cache.entries()
    assert not artifact.exists()


def test_tampered_envelope_is_a_miss(tmp_path):
    cache = make_cache(tmp_path)
    key = "ef" + "0" * 62
    cache.store(key, "payload")
    artifact = cache.root / "objects" / key[:2] / f"{key}.pkl"
    artifact.write_bytes(pickle.dumps({"schema": "wrong", "key": key, "result": 1}))
    hit, _, _ = cache.lookup(key)
    assert not hit


def test_garbage_index_tolerated_and_artifact_readopted(tmp_path):
    cache = make_cache(tmp_path)
    key = "1a" + "0" * 62
    cache.store(key, 42)
    (cache.root / "index.json").write_text("{not json at all")

    reopened = make_cache(tmp_path)
    assert reopened.entries() == {}  # index lost...
    hit, value, _ = reopened.lookup(key)
    assert hit and value == 42  # ...but the artifact still serves hits
    assert key in reopened.entries()  # and is re-adopted into the index


def test_unpicklable_result_degrades_to_not_cached(tmp_path):
    cache = make_cache(tmp_path)
    key = "2b" + "0" * 62
    assert not cache.store(key, lambda: None)
    assert cache.put_failures == 1
    assert key not in cache.entries()


def test_lru_eviction_under_size_cap(tmp_path):
    cache = make_cache(tmp_path, max_bytes=1)  # every put overflows
    old_key = "3c" + "0" * 62
    new_key = "4d" + "0" * 62
    cache.store(old_key, list(range(50)))
    assert cache.evictions >= 1  # first entry already over cap
    cache.store(new_key, list(range(50)))
    # Only the newest entry can survive a 1-byte budget.
    assert old_key not in cache.entries()


def test_lru_prefers_recently_used(tmp_path):
    cache = make_cache(tmp_path, max_bytes=1 << 20)
    keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
    for key in keys:
        cache.store(key, list(range(10)))
    hit, _, _ = cache.lookup(keys[0])  # freshen the oldest entry
    assert hit
    cache.max_bytes = cache.total_bytes() - 1  # force one eviction
    cache.store("ff" + "0" * 62, list(range(10)))
    survivors = cache.entries()
    assert keys[0] in survivors  # recently used: kept
    assert keys[1] not in survivors  # least recently used: evicted


def test_clear_removes_everything(tmp_path):
    cache = make_cache(tmp_path)
    for i in range(3):
        cache.store(f"{i:02x}" + "1" * 62, i)
    assert cache.clear() == 3
    assert cache.entries() == {}
    assert cache.total_bytes() == 0
    assert not list((cache.root / "objects").glob("**/*.pkl"))


def test_stats_lifetime_persist_across_instances(tmp_path):
    cache = make_cache(tmp_path)
    key = "5e" + "0" * 62
    cache.store(key, 7)
    cache.lookup(key)
    cache.lookup("6f" + "0" * 62)  # miss
    cache.flush()
    reopened = make_cache(tmp_path)
    lifetime = reopened.stats()["lifetime"]
    assert lifetime["hits"] == 1
    assert lifetime["misses"] == 1
