"""Connection manager: handshake, accept/reject, latency."""

import pytest

from repro.rdma import Access, ConnectionRefused, Fabric, Opcode, SendWR, sge
from repro.rdma.cm import install_cm
from repro.sim import Environment, ms


def build(env):
    fabric = Fabric(env)
    client = fabric.attach("client")
    server = fabric.attach("server")
    install_cm(client)
    install_cm(server)
    return fabric, client, server


def test_connect_accept_and_use():
    env = Environment()
    fabric, client, server = build(env)

    server_pd = server.create_pd()
    server_mr = server_pd.register(server.alloc(256), Access.rw())
    server_cq = server.create_cq()

    def server_proc():
        listener = server.cm.listen(9000)
        request = yield listener.get_request()
        assert request.private_data == {"hello": "rfaas"}
        qp = server.create_qp(server_pd, server_cq)
        listener.accept(request, qp, private_data={"addr": server_mr.addr, "rkey": server_mr.rkey})

    client_pd = client.create_pd()
    client_mr = client_pd.register(client.alloc(256), Access.rw())
    client_cq = client.create_cq()
    outcome = {}

    def client_proc():
        qp = client.create_qp(client_pd, client_cq)
        result = yield from client.cm.connect("server", 9000, qp, private_data={"hello": "rfaas"})
        outcome["settings"] = result.private_data
        outcome["connected_at"] = env.now
        # Use the connection immediately.
        client_mr.write(0, b"post-handshake")
        qp.post_send(
            SendWR(
                opcode=Opcode.RDMA_WRITE,
                local=sge(client_mr, 0, 14),
                remote_addr=result.private_data["addr"],
                rkey=result.private_data["rkey"],
            )
        )

    env.process(server_proc())
    env.process(client_proc())
    env.run()
    assert outcome["settings"]["rkey"] == server_mr.rkey
    assert server_mr.read(0, 14) == b"post-handshake"
    # Handshake costs on the order of a millisecond, not microseconds.
    assert 0 < outcome["connected_at"] < ms(5)


def test_connect_to_dead_port_refused():
    env = Environment()
    fabric, client, server = build(env)

    def client_proc():
        qp = client.create_qp(client.create_pd(), client.create_cq())
        with pytest.raises(ConnectionRefused):
            yield from client.cm.connect("server", 1234, qp)

    proc = env.process(client_proc())
    env.run()
    assert proc.ok


def test_listener_reject():
    env = Environment()
    fabric, client, server = build(env)

    def server_proc():
        listener = server.cm.listen(9000)
        request = yield listener.get_request()
        listener.reject(request, reason="no capacity")

    def client_proc():
        qp = client.create_qp(client.create_pd(), client.create_cq())
        try:
            yield from client.cm.connect("server", 9000, qp)
        except ConnectionRefused as error:
            return str(error)

    env.process(server_proc())
    proc = env.process(client_proc())
    env.run()
    assert "no capacity" in proc.value


def test_closed_listener_refuses():
    env = Environment()
    fabric, client, server = build(env)
    listener = server.cm.listen(9000)
    listener.close()

    def client_proc():
        qp = client.create_qp(client.create_pd(), client.create_cq())
        with pytest.raises(ConnectionRefused):
            yield from client.cm.connect("server", 9000, qp)

    env.process(client_proc())
    env.run()


def test_duplicate_listen_rejected():
    env = Environment()
    fabric, client, server = build(env)
    server.cm.listen(7)
    with pytest.raises(ConnectionRefused):
        server.cm.listen(7)


def test_install_cm_idempotent():
    env = Environment()
    fabric = Fabric(env)
    nic = fabric.attach("x")
    cm1 = install_cm(nic)
    cm2 = install_cm(nic)
    assert cm1 is cm2
