"""Calibration and contention: the fabric must measure like the paper's."""

import pytest

from repro.rdma import Fabric, LatencyModel, Opcode, QueuePair, SendWR, sge
from repro.rdma.microbench import ib_write_bw, ib_write_lat
from repro.sim import Environment, MiB, us


def test_latency_model_pingpong_formula_matches_paper_rtt():
    model = LatencyModel()
    assert model.pingpong_rtt_ns(2) == 3_690  # paper: 3.69 us


def test_latency_model_inline_cliff():
    model = LatencyModel()
    at_threshold = model.one_way_ns(model.max_inline_data, inline=True)
    past_threshold = model.one_way_ns(model.max_inline_data + 1, inline=False)
    assert past_threshold - at_threshold >= model.pcie_dma_fetch_ns


def test_serialization_zero_for_empty():
    model = LatencyModel()
    assert model.serialization_ns(0) == 0
    assert model.serialization_ns(-5) == 0


def test_measured_ib_write_lat_matches_paper():
    result = ib_write_lat(2, iterations=50)
    assert result.median_ns == pytest.approx(3_690, rel=0.01)


def test_measured_bandwidth_matches_paper():
    result = ib_write_bw(1 * MiB, iterations=100)
    assert result.mib_per_sec == pytest.approx(11_686.4, rel=0.02)


def test_lat_monotone_in_size():
    sizes = [2, 512, 4096, 65536]
    medians = [ib_write_lat(size, iterations=10).median_ns for size in sizes]
    assert medians == sorted(medians)


def test_inline_asymmetry_bump_visible_in_measurement():
    """Crossing max_inline adds ~2x the DMA fetch to the ping-pong RTT."""
    model = LatencyModel()
    below = ib_write_lat(model.max_inline_data, iterations=10).median_ns
    above = ib_write_lat(model.max_inline_data + 1, iterations=10).median_ns
    assert above - below >= 2 * model.pcie_dma_fetch_ns * 0.9


def test_link_queue_fcfs_reservations():
    env = Environment()
    fabric = Fabric(env)
    nic = fabric.attach("x")
    link = fabric._attachments["x"].egress
    s1, f1 = link.reserve(1 * MiB)
    s2, f2 = link.reserve(1 * MiB)
    assert s1 == 0
    assert s2 == f1  # second message queues behind the first
    assert f2 - f1 == f1 - s1


def test_parallel_senders_share_one_ingress_link():
    """N senders to one receiver: total time ~ N * serialization."""
    env = Environment()
    fabric = Fabric(env)
    receiver = fabric.attach("rx")
    n_senders, size = 4, 4 * MiB
    finish_times = []

    def send(name):
        yield from fabric.transfer(name, "rx", size)
        finish_times.append(env.now)

    for i in range(n_senders):
        fabric.attach(f"tx{i}")
        env.process(send(f"tx{i}"))
    env.run()
    ser = fabric.model.serialization_ns(size)
    # The last transfer cannot finish before all bytes crossed rx ingress.
    assert max(finish_times) >= n_senders * ser
    assert max(finish_times) < n_senders * ser + us(10)


def test_disjoint_pairs_do_not_contend():
    env = Environment()
    fabric = Fabric(env)
    for name in ("a", "b", "c", "d"):
        fabric.attach(name)
    size = 4 * MiB
    finish = {}

    def send(src, dst):
        yield from fabric.transfer(src, dst, size)
        finish[(src, dst)] = env.now

    env.process(send("a", "b"))
    env.process(send("c", "d"))
    env.run()
    # Full parallelism: both pairs finish at the single-transfer time.
    assert finish[("a", "b")] == finish[("c", "d")]


def test_duplicate_attach_rejected():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("n")
    with pytest.raises(ValueError):
        fabric.attach("n")


def test_qp_state_machine_legal_path():
    from repro.rdma import QPState

    env = Environment()
    fabric = Fabric(env)
    nic = fabric.attach("h")
    qp = nic.create_qp(nic.create_pd(), nic.create_cq())
    assert qp.state is QPState.RESET
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR)
    qp.modify(QPState.RTS)
    qp.modify(QPState.ERR)
    qp.modify(QPState.RESET)


def test_qp_illegal_transition_rejected():
    from repro.rdma import QPState, QPStateError

    env = Environment()
    fabric = Fabric(env)
    nic = fabric.attach("h")
    qp = nic.create_qp(nic.create_pd(), nic.create_cq())
    with pytest.raises(QPStateError):
        qp.modify(QPState.RTS)  # RESET -> RTS is illegal


def test_blocking_wait_slower_than_busy_poll():
    """The hot/warm gap: blocking notification costs ~4.3 us extra."""
    env = Environment()
    fabric = Fabric(env)
    nic_a, nic_b = fabric.attach("a"), fabric.attach("b")
    times = {}
    from repro.rdma import Access, RecvWR

    setups = {}
    for tag, nic in (("a", nic_a), ("b", nic_b)):
        pd = nic.create_pd()
        mr = pd.register(nic.alloc(256), Access.rw())
        cq = nic.create_cq()
        setups[tag] = (mr, cq, nic.create_qp(pd, cq))
    QueuePair.connect_pair(setups["a"][2], setups["b"][2])
    mr_a, cq_a, qp_a = setups["a"]
    mr_b, cq_b, qp_b = setups["b"]

    def receiver(style):
        qp_b.post_recv(RecvWR(local=sge(mr_b)))
        if style == "poll":
            yield from cq_b.busy_poll()
        else:
            yield from cq_b.blocking_wait()
        times[style] = env.now

    def sender():
        qp_a.post_send(
            SendWR(
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                local=sge(mr_a, 0, 64),
                remote_addr=mr_b.addr,
                rkey=mr_b.rkey,
                imm_data=1,
                inline=True,
                signaled=False,
            )
        )
        yield env.timeout(0)

    # Two rounds with fresh processes: first polled, then blocking.
    env.process(receiver("poll"))
    env.process(sender())
    env.run()
    base = env.now

    env.process(receiver("block"))
    env.process(sender())
    env.run()
    model = fabric.model
    assert times["block"] - base - times["poll"] == model.blocking_notify_ns - model.poll_detect_ns
