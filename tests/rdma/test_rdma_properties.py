"""Property-based tests: data integrity and timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdma import Access, Fabric, Opcode, QueuePair, RecvWR, SendWR, sge
from repro.rdma.latency import LatencyModel
from repro.sim import Environment


def connected_pair(mr_size):
    env = Environment()
    fabric = Fabric(env)
    parts = []
    for tag in ("a", "b"):
        nic = fabric.attach(tag)
        pd = nic.create_pd()
        mr = pd.register(nic.alloc(mr_size), Access.all())
        cq = nic.create_cq()
        parts.append((nic, mr, cq, nic.create_qp(pd, cq)))
    QueuePair.connect_pair(parts[0][3], parts[1][3])
    return env, parts[0], parts[1]


@given(payload=st.binary(min_size=1, max_size=2048), offset=st.integers(min_value=0, max_value=512))
@settings(max_examples=60, deadline=None)
def test_rdma_write_delivers_exact_bytes(payload, offset):
    env, (_, mr_a, cq_a, qp_a), (_, mr_b, _, _) = connected_pair(4096)
    mr_a.write(0, payload)
    qp_a.post_send(
        SendWR(
            opcode=Opcode.RDMA_WRITE,
            local=sge(mr_a, 0, len(payload)),
            remote_addr=mr_b.addr + offset,
            rkey=mr_b.rkey,
        )
    )
    env.run()
    assert cq_a.poll()[0].ok
    assert mr_b.read(offset, len(payload)) == payload


@given(payload=st.binary(min_size=1, max_size=1024))
@settings(max_examples=40, deadline=None)
def test_send_recv_delivers_exact_bytes(payload):
    env, (_, mr_a, cq_a, qp_a), (_, mr_b, recv_cq_b, qp_b) = connected_pair(4096)
    qp_b.post_recv(RecvWR(local=sge(mr_b)))
    mr_a.write(0, payload)
    qp_a.post_send(SendWR(opcode=Opcode.SEND, local=sge(mr_a, 0, len(payload))))
    env.run()
    wc = recv_cq_b.poll()[0]
    assert wc.ok and wc.byte_len == len(payload)
    assert mr_b.read(0, len(payload)) == payload


@given(payload=st.binary(min_size=1, max_size=512))
@settings(max_examples=40, deadline=None)
def test_rdma_read_echoes_remote_content(payload):
    env, (_, mr_a, cq_a, qp_a), (_, mr_b, _, _) = connected_pair(4096)
    mr_b.write(0, payload)
    qp_a.post_send(
        SendWR(
            opcode=Opcode.RDMA_READ,
            local=sge(mr_a, 0, len(payload)),
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
        )
    )
    env.run()
    assert mr_a.read(0, len(payload)) == payload


@given(
    adds=st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=20),
    initial=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_fetch_add_sums_exactly(adds, initial):
    env, (_, mr_a, cq_a, qp_a), (_, mr_b, _, _) = connected_pair(4096)
    mr_b.block.write_u64(mr_b.addr, initial)
    for value in adds:
        qp_a.post_send(
            SendWR(
                opcode=Opcode.ATOMIC_FETCH_ADD,
                local=sge(mr_a, 0, 8),
                remote_addr=mr_b.addr,
                rkey=mr_b.rkey,
                compare_add=value,
            )
        )
    env.run()
    assert mr_b.block.read_u64(mr_b.addr) == (initial + sum(adds)) % 2**64


@given(size=st.integers(min_value=0, max_value=10_000_000))
@settings(max_examples=100, deadline=None)
def test_one_way_latency_monotone_and_positive(size):
    model = LatencyModel()
    assert model.one_way_ns(size, inline=False) >= model.one_way_ns(0, inline=True)
    assert model.one_way_ns(size + 1000, inline=False) >= model.one_way_ns(size, inline=False)


@given(sizes=st.lists(st.integers(min_value=1, max_value=1_000_000), min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_link_reservations_never_overlap(sizes):
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("h")
    link = fabric._attachments["h"].egress
    windows = [link.reserve(size) for size in sizes]
    for (s1, f1), (s2, f2) in zip(windows, windows[1:]):
        assert s2 >= f1
    assert link.bytes_carried == sum(sizes)
