"""Protection semantics: rkeys, access flags, QP error states, atomics."""

import pytest

from repro.rdma import Access, Fabric, Opcode, QPState, QueuePair, RecvWR, SendWR, WCStatus, sge
from repro.sim import Environment


def make_hosts(access_b):
    env = Environment()
    fabric = Fabric(env)
    out = {}
    for tag, access in (("a", Access.all()), ("b", access_b)):
        nic = fabric.attach(tag)
        pd = nic.create_pd()
        block = nic.alloc(4096)
        mr = pd.register(block, access)
        cq = nic.create_cq()
        qp = nic.create_qp(pd, cq)
        out[tag] = (nic, mr, cq, qp)
    QueuePair.connect_pair(out["a"][3], out["b"][3])
    return env, out


def post_and_run(env, qp, wr):
    qp.post_send(wr)
    env.run()


def test_write_without_remote_write_access_fails():
    env, hosts = make_hosts(Access.REMOTE_READ)
    nic_a, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, qp_b = hosts["b"]
    post_and_run(
        env,
        qp_a,
        SendWR(opcode=Opcode.RDMA_WRITE, local=sge(mr_a, 0, 8), remote_addr=mr_b.addr, rkey=mr_b.rkey),
    )
    wc = cq_a.poll()[0]
    assert wc.status is WCStatus.REM_ACCESS_ERR
    assert qp_a.state is QPState.ERR
    assert qp_b.state is QPState.ERR


def test_read_without_remote_read_access_fails():
    env, hosts = make_hosts(Access.REMOTE_WRITE)
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    post_and_run(
        env,
        qp_a,
        SendWR(opcode=Opcode.RDMA_READ, local=sge(mr_a, 0, 8), remote_addr=mr_b.addr, rkey=mr_b.rkey),
    )
    assert cq_a.poll()[0].status is WCStatus.REM_ACCESS_ERR


def test_unknown_rkey_fails():
    env, hosts = make_hosts(Access.all())
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    post_and_run(
        env,
        qp_a,
        SendWR(opcode=Opcode.RDMA_WRITE, local=sge(mr_a, 0, 8), remote_addr=mr_b.addr, rkey=999_999),
    )
    assert cq_a.poll()[0].status is WCStatus.REM_ACCESS_ERR


def test_out_of_bounds_write_fails():
    env, hosts = make_hosts(Access.all())
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    post_and_run(
        env,
        qp_a,
        SendWR(
            opcode=Opcode.RDMA_WRITE,
            local=sge(mr_a, 0, 100),
            remote_addr=mr_b.addr + mr_b.length - 50,  # 50B overhang
            rkey=mr_b.rkey,
        ),
    )
    assert cq_a.poll()[0].status is WCStatus.REM_ACCESS_ERR


def test_deregistered_mr_fails_remote_access():
    env, hosts = make_hosts(Access.all())
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    mr_b.deregister()
    post_and_run(
        env,
        qp_a,
        SendWR(opcode=Opcode.RDMA_WRITE, local=sge(mr_a, 0, 8), remote_addr=mr_b.addr, rkey=mr_b.rkey),
    )
    assert cq_a.poll()[0].status is WCStatus.REM_ACCESS_ERR


def test_error_qp_flushes_posted_receives():
    env, hosts = make_hosts(Access.REMOTE_READ)
    nic_a, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, cq_b, qp_b = hosts["b"]
    qp_b.post_recv(RecvWR(local=sge(mr_b)))
    qp_b.post_recv(RecvWR(local=sge(mr_b)))
    # Illegal write drives qp_b into ERR; its receives must flush.
    post_and_run(
        env,
        qp_a,
        SendWR(opcode=Opcode.RDMA_WRITE, local=sge(mr_a, 0, 8), remote_addr=mr_b.addr, rkey=mr_b.rkey),
    )
    flushed = cq_b.poll()
    assert len(flushed) == 2
    assert all(wc.status is WCStatus.WR_FLUSH_ERR for wc in flushed)


def test_post_send_after_error_raises():
    env, hosts = make_hosts(Access.REMOTE_READ)
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    post_and_run(
        env,
        qp_a,
        SendWR(opcode=Opcode.RDMA_WRITE, local=sge(mr_a, 0, 8), remote_addr=mr_b.addr, rkey=mr_b.rkey),
    )
    from repro.rdma import QPStateError

    with pytest.raises(QPStateError):
        qp_a.post_send(
            SendWR(opcode=Opcode.RDMA_WRITE, local=sge(mr_a, 0, 8), remote_addr=mr_b.addr, rkey=mr_b.rkey)
        )


# -- atomics -----------------------------------------------------------------


def test_fetch_add_returns_old_and_adds():
    env, hosts = make_hosts(Access.all())
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    mr_b.block.write_u64(mr_b.addr, 40)
    post_and_run(
        env,
        qp_a,
        SendWR(
            opcode=Opcode.ATOMIC_FETCH_ADD,
            local=sge(mr_a, 0, 8),
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
            compare_add=2,
        ),
    )
    assert cq_a.poll()[0].ok
    assert mr_b.block.read_u64(mr_b.addr) == 42
    assert int.from_bytes(mr_a.read(0, 8), "little") == 40


def test_fetch_add_accumulates_across_clients():
    env, hosts = make_hosts(Access.all())
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    for i in range(10):
        qp_a.post_send(
            SendWR(
                opcode=Opcode.ATOMIC_FETCH_ADD,
                local=sge(mr_a, 0, 8),
                remote_addr=mr_b.addr,
                rkey=mr_b.rkey,
                compare_add=5,
            )
        )
    env.run()
    assert mr_b.block.read_u64(mr_b.addr) == 50
    assert all(wc.ok for wc in cq_a.poll(max_entries=16))


def test_cmp_swap_swaps_only_on_match():
    env, hosts = make_hosts(Access.all())
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    mr_b.block.write_u64(mr_b.addr, 7)
    # Mismatch: no swap, returns old value.
    post_and_run(
        env,
        qp_a,
        SendWR(
            opcode=Opcode.ATOMIC_CMP_SWP,
            local=sge(mr_a, 0, 8),
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
            compare_add=99,
            swap=1,
        ),
    )
    assert mr_b.block.read_u64(mr_b.addr) == 7
    # Match: swaps.
    qp_a.post_send(
        SendWR(
            opcode=Opcode.ATOMIC_CMP_SWP,
            local=sge(mr_a, 0, 8),
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
            compare_add=7,
            swap=123,
        )
    )
    env.run()
    assert mr_b.block.read_u64(mr_b.addr) == 123


def test_atomic_without_remote_atomic_access_fails():
    env, hosts = make_hosts(Access.rw())  # no REMOTE_ATOMIC
    _, mr_a, cq_a, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    post_and_run(
        env,
        qp_a,
        SendWR(
            opcode=Opcode.ATOMIC_FETCH_ADD,
            local=sge(mr_a, 0, 8),
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
            compare_add=1,
        ),
    )
    assert cq_a.poll()[0].status is WCStatus.REM_ACCESS_ERR


def test_atomic_misaligned_rejected():
    env, hosts = make_hosts(Access.all())
    _, mr_a, _, qp_a = hosts["a"]
    _, mr_b, _, _ = hosts["b"]
    from repro.rdma import RdmaError

    with pytest.raises(RdmaError):
        qp_a.post_send(
            SendWR(
                opcode=Opcode.ATOMIC_FETCH_ADD,
                local=sge(mr_a, 0, 8),
                remote_addr=mr_b.addr + 3,
                rkey=mr_b.rkey,
                compare_add=1,
            )
        )
