"""Fabric fault injection: retransmission tails, not corruption."""

import pytest

from repro.core import Deployment
from repro.rdma import Fabric
from repro.rdma.fabric import FaultModel
from repro.sim import Environment, us

from tests.core.conftest import make_package


def test_fault_model_validation_and_determinism():
    with pytest.raises(ValueError):
        FaultModel(probability=1.5)
    a = FaultModel(probability=0.3, seed=1)
    b = FaultModel(probability=0.3, seed=1)
    assert [a.penalty_ns() for _ in range(50)] == [b.penalty_ns() for _ in range(50)]


def test_zero_probability_is_free():
    model = FaultModel(probability=0.0)
    assert all(model.penalty_ns() == 0 for _ in range(100))
    assert model.faults_injected == 0


def test_penalties_are_multiples_of_retransmit_timeout():
    model = FaultModel(probability=0.5, retransmit_delay_ns=1000, seed=3)
    penalties = {model.penalty_ns() for _ in range(300)}
    assert penalties <= {0, 1000, 2000}
    assert 1000 in penalties
    assert model.faults_injected > 0


def test_invocations_survive_flaky_network_with_latency_tail():
    """Payloads stay intact under faults; only the tail latency grows."""
    faults = FaultModel(probability=0.08, seed=5)
    dep = Deployment.build(executors=1, clients=1, faults=faults)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"ok")
        rtts = []
        for _ in range(60):
            future = inv.submit("echo", in_buf, 2, out_buf)
            result = yield future.wait()
            assert result.output() == b"ok"
            rtts.append(result.rtt_ns)
        return rtts

    rtts = dep.run(driver())
    assert len(rtts) == 60
    assert min(rtts) < us(6)  # fault-free invocations unchanged
    assert max(rtts) > us(400)  # retransmission tail visible
    assert faults.faults_injected > 0
