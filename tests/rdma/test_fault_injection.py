"""Fabric fault injection: retransmission tails, not corruption."""

import pytest

from repro.core import Deployment
from repro.rdma import Fabric
from repro.rdma.fabric import FaultModel
from repro.sim import Environment, us

from tests.core.conftest import make_package


def test_fault_model_validation_and_determinism():
    with pytest.raises(ValueError):
        FaultModel(probability=1.5)
    a = FaultModel(probability=0.3, seed=1)
    b = FaultModel(probability=0.3, seed=1)
    assert [a.penalty_ns() for _ in range(50)] == [b.penalty_ns() for _ in range(50)]


def test_zero_probability_is_free():
    model = FaultModel(probability=0.0)
    assert all(model.penalty_ns() == 0 for _ in range(100))
    assert model.faults_injected == 0


def test_penalties_are_multiples_of_retransmit_timeout():
    model = FaultModel(probability=0.5, retransmit_delay_ns=1000, seed=3)
    penalties = {model.penalty_ns() for _ in range(300)}
    assert penalties <= {0, 1000, 2000}
    assert 1000 in penalties
    assert model.faults_injected > 0


def test_invocations_survive_flaky_network_with_latency_tail():
    """Payloads stay intact under faults; only the tail latency grows."""
    faults = FaultModel(probability=0.08, seed=5)
    dep = Deployment.build(executors=1, clients=1, faults=faults)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"ok")
        rtts = []
        for _ in range(60):
            future = inv.submit("echo", in_buf, 2, out_buf)
            result = yield future.wait()
            assert result.output() == b"ok"
            rtts.append(result.rtt_ns)
        return rtts

    rtts = dep.run(driver())
    assert len(rtts) == 60
    assert min(rtts) < us(6)  # fault-free invocations unchanged
    assert max(rtts) > us(400)  # retransmission tail visible
    assert faults.faults_injected > 0


def test_seeded_penalty_sequences_differ_across_seeds():
    a = [FaultModel(probability=0.3, seed=1).penalty_ns() for _ in range(100)]
    b = [FaultModel(probability=0.3, seed=2).penalty_ns() for _ in range(100)]
    assert a != b


def test_faults_injected_counts_every_nonzero_penalty():
    model = FaultModel(probability=0.4, retransmit_delay_ns=1000, seed=11)
    penalties = [model.penalty_ns() for _ in range(500)]
    nonzero = [p for p in penalties if p]
    # One increment per faulty transfer -- a double retransmission
    # (2000 ns) still counts as a single injected fault.
    assert model.faults_injected == len(nonzero)
    assert any(p == 2000 for p in nonzero)


def test_transfer_path_draw_order_is_stable_across_runs():
    """Two identical deployments consume FaultModel draws identically."""
    from tests.parallel.factories import faulty_rtts

    first = faulty_rtts(probability=0.08, seed=5, invocations=25)
    second = faulty_rtts(probability=0.08, seed=5, invocations=25)
    assert first == second
    assert first["faults_injected"] > 0


def test_transfer_path_draw_order_unchanged_by_cache_layer(tmp_path):
    """Satellite: the cache must not perturb fabric RNG consumption.

    Key/fingerprint computation and store I/O happen in the dispatching
    process around the run; the run's own numpy draws must be
    byte-identical whether the engine is uncached, filling the cache,
    or serving from it.
    """
    from repro.cache import ResultCache
    from repro.parallel import RunSpec, run_specs

    spec = [
        RunSpec(
            "tests.parallel.factories:faulty_rtts",
            {"probability": 0.08, "seed": 5, "invocations": 25},
        )
    ]
    uncached = run_specs(spec, 1)
    cache = ResultCache(tmp_path / "cache")
    cold = run_specs(spec, 1, cache=cache)
    warm = run_specs(spec, 1, cache=cache)
    assert uncached == cold == warm
