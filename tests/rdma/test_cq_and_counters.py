"""CQ bounds/stats, QP counters, link utilization accounting."""

import pytest

from repro.rdma import Access, Fabric, Opcode, QueuePair, SendWR, WorkCompletion, sge
from repro.rdma.completion import CompletionQueue, CQOverflow
from repro.rdma.constants import WCOpcode
from repro.sim import Environment, KiB, MiB


def test_cq_overflow_raises():
    env = Environment()
    cq = CompletionQueue(env, depth=2, name="tiny")
    cq.push(WorkCompletion(wr_id=1, opcode=WCOpcode.RECV))
    cq.push(WorkCompletion(wr_id=2, opcode=WCOpcode.RECV))
    with pytest.raises(CQOverflow):
        cq.push(WorkCompletion(wr_id=3, opcode=WCOpcode.RECV))


def test_cq_poll_respects_max_entries():
    env = Environment()
    cq = CompletionQueue(env, depth=16)
    for i in range(5):
        cq.push(WorkCompletion(wr_id=i, opcode=WCOpcode.RECV))
    assert len(cq.poll(max_entries=2)) == 2
    assert len(cq) == 3
    assert cq.completions_pushed == 5


def test_cq_timestamps_completions():
    env = Environment()
    cq = CompletionQueue(env, depth=16)

    def proc():
        yield env.timeout(123)
        cq.push(WorkCompletion(wr_id=1, opcode=WCOpcode.RECV))

    env.process(proc())
    env.run()
    assert cq.poll()[0].timestamp == 123


def connected_pair():
    env = Environment()
    fabric = Fabric(env)
    parts = []
    for tag in ("a", "b"):
        nic = fabric.attach(tag)
        pd = nic.create_pd()
        mr = pd.register(nic.alloc(1 << 21), Access.all())
        cq = nic.create_cq()
        parts.append((nic, mr, cq, nic.create_qp(pd, cq)))
    QueuePair.connect_pair(parts[0][3], parts[1][3])
    return env, fabric, parts


def test_qp_counters_track_posts_and_bytes():
    env, fabric, ((nic_a, mr_a, cq_a, qp_a), (nic_b, mr_b, _, _)) = connected_pair()
    for _ in range(3):
        qp_a.post_send(
            SendWR(
                opcode=Opcode.RDMA_WRITE,
                local=sge(mr_a, 0, 1000),
                remote_addr=mr_b.addr,
                rkey=mr_b.rkey,
            )
        )
    env.run()
    assert qp_a.ops_posted == 3
    assert qp_a.bytes_sent == 3000


def test_link_counters_and_utilization():
    env, fabric, ((nic_a, mr_a, cq_a, qp_a), (nic_b, mr_b, _, _)) = connected_pair()
    size = 1 * MiB
    qp_a.post_send(
        SendWR(
            opcode=Opcode.RDMA_WRITE,
            local=sge(mr_a, 0, size),
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
        )
    )
    env.run()
    egress = fabric._attachments["a"].egress
    ingress = fabric._attachments["b"].ingress
    assert egress.bytes_carried == size
    assert ingress.bytes_carried == size
    assert 0 < egress.utilization() <= 1.0
    # The reverse direction never carried payload (ACKs are modelled
    # as fixed delay, not link traffic).
    assert fabric._attachments["b"].egress.bytes_carried == 0


def test_connect_pair_requires_reset():
    env, fabric, ((nic_a, _, _, qp_a), (nic_b, _, _, qp_b)) = connected_pair()
    from repro.rdma import QPStateError

    with pytest.raises(QPStateError):
        QueuePair.connect_pair(qp_a, qp_b)  # already RTS


def test_reset_disconnects():
    from repro.rdma import QPState

    env, fabric, ((_, _, _, qp_a), _) = connected_pair()
    qp_a.modify(QPState.ERR)
    qp_a.modify(QPState.RESET)
    assert qp_a.remote is None
    assert not qp_a.connected


def test_send_queue_depth_enforced():
    """ibv_post_send-style ENOMEM when the SQ fills faster than the NIC
    drains it."""
    from repro.rdma import RdmaError

    env, fabric, ((nic_a, mr_a, cq_a, qp_a), (nic_b, mr_b, _, _)) = connected_pair()
    qp_small = nic_a.create_qp(qp_a.pd, cq_a, max_send_wr=4)
    peer = nic_b.create_qp(nic_b.create_pd(), nic_b.create_cq())
    QueuePair.connect_pair(qp_small, peer)

    def wr():
        return SendWR(
            opcode=Opcode.RDMA_WRITE,
            local=sge(mr_a, 0, 8),
            remote_addr=mr_b.addr,
            rkey=mr_b.rkey,
            signaled=False,
        )

    # Burst-post without letting the simulated NIC run: the 5th must fail.
    posted = 0
    with pytest.raises(RdmaError, match="send queue full"):
        for _ in range(10):
            qp_small.post_send(wr())
            posted += 1
    assert posted >= 4
    env.run()  # the accepted ones still complete


class _FakeEnv:
    """Just a clock: LinkQueue only ever reads ``env.now``."""

    def __init__(self) -> None:
        self.now = 0


def _fresh_link():
    from repro.rdma.fabric import LinkQueue
    from repro.rdma.latency import LatencyModel

    env = _FakeEnv()
    return env, LinkQueue(env, LatencyModel(), "t.egress")


def test_windowed_utilization_counts_only_window_busy_time():
    """Regression: utilization(since) used cumulative-from-zero busy time.

    A link busy for [0, d] and idle afterwards reported
    ``utilization(since=d) == 1.0`` (d/d) even though the queried
    window [d, 2d] was entirely idle (it could exceed 1.0 for larger
    transfers).
    """
    env, link = _fresh_link()
    start, finish = link.reserve(12 * KiB)
    assert start == 0 and finish > 0
    duration = finish - start

    env.now = 2 * duration
    assert link.utilization() == pytest.approx(0.5)
    assert link.utilization(since=duration) == 0.0  # idle window: 0, not 1.0
    assert link.utilization(since=duration // 2) == pytest.approx(
        (duration - duration // 2) / (env.now - duration // 2)
    )
    assert link.busy_time == duration  # cumulative counter unchanged


def test_windowed_utilization_clips_future_reservations():
    env, link = _fresh_link()
    env.now = 2000
    start, finish = link.reserve(12 * KiB)  # busy [2000, 2000+d]
    assert start == 2000
    env.now = start + (finish - start) // 2  # mid-reservation
    assert link.utilization(since=start) == pytest.approx(1.0)
    for since in (0, 1000, start, env.now - 1):
        assert 0.0 <= link.utilization(since=since) <= 1.0


def test_windowed_utilization_across_gaps():
    env, link = _fresh_link()
    _, first_end = link.reserve(12 * KiB)  # [0, d]
    duration = first_end
    env.now = 5 * duration
    second_start, second_end = link.reserve(12 * KiB)  # [5d, 6d]
    assert (second_start, second_end) == (5 * duration, 6 * duration)
    env.now = 10 * duration
    assert link.busy_before(env.now) == 2 * duration
    assert link.utilization() == pytest.approx(0.2)
    # Window covering the gap plus the second interval only.
    assert link.utilization(since=4 * duration) == pytest.approx(1 / 6)
    assert link.utilization(since=6 * duration) == 0.0
