"""Microbench result types and the SoftRoCE latency preset."""

import pytest

from repro.rdma.latency import LatencyModel
from repro.rdma.microbench import BandwidthResult, LatencyResult, ib_write_bw, ib_write_lat
from repro.sim import MiB, us


def test_latency_result_median():
    result = LatencyResult(size=8, iterations=3, rtts_ns=[30, 10, 20])
    assert result.median_ns == 20
    even = LatencyResult(size=8, iterations=4, rtts_ns=[1, 2, 3, 4])
    assert even.median_ns == 2.5


def test_bandwidth_result_units():
    result = BandwidthResult(size=1 * MiB, iterations=100, elapsed_ns=1_000_000_000)
    assert result.bytes_total == 100 * MiB
    assert result.mib_per_sec == pytest.approx(100.0)


def test_bw_grows_with_window():
    narrow = ib_write_bw(64 * 1024, iterations=64, window=1)
    wide = ib_write_bw(64 * 1024, iterations=64, window=32)
    assert wide.mib_per_sec > narrow.mib_per_sec


def test_soft_roce_preset_is_slower_everywhere():
    hw = LatencyModel()
    sw = LatencyModel.soft_roce()
    for size in (2, 1024, 65536):
        assert sw.pingpong_rtt_ns(size) > hw.pingpong_rtt_ns(size)
    assert sw.bandwidth_bytes_per_sec < hw.bandwidth_bytes_per_sec
    assert sw.max_inline_data == 0  # no real inlining in software


def test_soft_roce_rtt_order_of_magnitude():
    """SoftRoCE small-message RTTs are tens of microseconds."""
    sw = LatencyModel.soft_roce()
    assert us(20) < sw.pingpong_rtt_ns(64) < us(60)


def test_ib_write_lat_records_every_iteration():
    result = ib_write_lat(64, iterations=7)
    assert len(result.rtts_ns) == 7
    assert result.size == 64
