"""Shared fixtures: a two-host fabric with connected QPs."""

import pytest

from repro.rdma import Access, Fabric, QueuePair
from repro.sim import Environment


class TwoHosts:
    """Convenience bundle: hosts 'a' and 'b', 4 KiB MRs, connected QPs."""

    def __init__(self, mr_size=4096, access=Access.all()):
        self.env = Environment()
        self.fabric = Fabric(self.env)
        for tag in ("a", "b"):
            nic = self.fabric.attach(tag)
            pd = nic.create_pd()
            block = nic.alloc(mr_size)
            mr = pd.register(block, access)
            send_cq = nic.create_cq(name=f"{tag}.send")
            recv_cq = nic.create_cq(name=f"{tag}.recv")
            qp = nic.create_qp(pd, send_cq, recv_cq)
            setattr(self, f"nic_{tag}", nic)
            setattr(self, f"pd_{tag}", pd)
            setattr(self, f"mr_{tag}", mr)
            setattr(self, f"send_cq_{tag}", send_cq)
            setattr(self, f"recv_cq_{tag}", recv_cq)
            setattr(self, f"qp_{tag}", qp)
        QueuePair.connect_pair(self.qp_a, self.qp_b)


@pytest.fixture
def hosts():
    return TwoHosts()
