"""Tests for host memory, blocks, registration and keys."""

import pytest

from repro.rdma import Access, HostMemory, MemoryRegistrationError
from repro.rdma.errors import OutOfMemory
from repro.rdma.memory import PAGE_SIZE


def test_alloc_is_page_aligned():
    mem = HostMemory()
    block = mem.alloc(100)
    assert block.base % PAGE_SIZE == 0
    assert block.size == 100


def test_alloc_custom_alignment():
    mem = HostMemory()
    block = mem.alloc(8, align=64)
    assert block.base % 64 == 0


def test_alloc_rejects_bad_sizes():
    mem = HostMemory()
    with pytest.raises(ValueError):
        mem.alloc(0)
    with pytest.raises(ValueError):
        mem.alloc(-4)
    with pytest.raises(ValueError):
        mem.alloc(16, align=3)


def test_alloc_addresses_do_not_overlap():
    mem = HostMemory()
    blocks = [mem.alloc(1000) for _ in range(10)]
    spans = sorted((b.base, b.end) for b in blocks)
    for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
        assert next_base >= prev_end


def test_out_of_memory():
    mem = HostMemory(capacity=10_000)
    with pytest.raises(OutOfMemory):
        mem.alloc(20_000)


def test_block_write_read_roundtrip():
    mem = HostMemory()
    block = mem.alloc(64)
    block.write(block.base + 8, b"hello")
    assert block.read(block.base + 8, 5) == b"hello"
    assert block.read(block.base, 8) == bytes(8)


def test_block_bounds_enforced():
    mem = HostMemory()
    block = mem.alloc(16)
    with pytest.raises(MemoryRegistrationError):
        block.write(block.base + 12, b"too-long")
    with pytest.raises(MemoryRegistrationError):
        block.read(block.base - 1, 4)


def test_block_u64_helpers():
    mem = HostMemory()
    block = mem.alloc(16)
    block.write_u64(block.base, 0xDEADBEEF)
    assert block.read_u64(block.base) == 0xDEADBEEF
    # Wraparound at 2^64.
    block.write_u64(block.base, 2**64 + 5)
    assert block.read_u64(block.base) == 5


def test_virtual_block_shadow_prefix():
    """Virtual blocks persist only their first SHADOW_BYTES (control
    headers survive; bulk payload is size-only)."""
    from repro.rdma.memory import SHADOW_BYTES

    mem = HostMemory()
    block = mem.alloc(1 << 30, virtual=True)
    assert block.is_virtual
    block.write(block.base, b"header")
    assert block.read(block.base, 6) == b"header"
    # Past the shadow: accepted but not stored.
    block.write(block.base + SHADOW_BYTES, b"bulk")
    assert block.read(block.base + SHADOW_BYTES, 4) == bytes(4)
    # A write straddling the boundary keeps only the shadow part.
    block.write(block.base + SHADOW_BYTES - 2, b"abcd")
    assert block.read(block.base + SHADOW_BYTES - 2, 2) == b"ab"
    assert block.read(block.base + SHADOW_BYTES, 2) == bytes(2)


def test_free_and_block_at():
    mem = HostMemory()
    block = mem.alloc(128)
    assert mem.block_at(block.base + 5) is block
    mem.free(block)
    assert mem.block_at(block.base) is None
    with pytest.raises(MemoryRegistrationError):
        mem.free(block)


def test_bytes_allocated_accounting():
    mem = HostMemory()
    a = mem.alloc(100)
    b = mem.alloc(200)
    assert mem.bytes_allocated == 300
    mem.free(a)
    assert mem.bytes_allocated == 200
    mem.free(b)
    assert mem.bytes_allocated == 0


def test_registration_window_and_keys(hosts):
    nic = hosts.nic_a
    pd = nic.create_pd()
    block = nic.alloc(4096)
    mr_full = pd.register(block, Access.rw())
    mr_window = pd.register(block, Access.REMOTE_READ, addr=block.base + 1024, length=512)
    assert mr_full.lkey != mr_window.lkey
    assert mr_full.rkey != mr_window.rkey
    assert mr_window.in_bounds(block.base + 1024, 512)
    assert not mr_window.in_bounds(block.base + 1024, 513)
    assert mr_window.allows(Access.REMOTE_READ)
    assert not mr_window.allows(Access.REMOTE_WRITE)


def test_registration_out_of_block_rejected(hosts):
    nic = hosts.nic_a
    pd = nic.create_pd()
    block = nic.alloc(100)
    with pytest.raises(MemoryRegistrationError):
        pd.register(block, addr=block.base + 50, length=100)
    with pytest.raises(MemoryRegistrationError):
        pd.register(block, length=0)


def test_deregister_invalidates_rkey(hosts):
    nic = hosts.nic_a
    mr = hosts.mr_a
    assert nic.lookup_rkey(mr.rkey) is mr
    mr.deregister()
    assert nic.lookup_rkey(mr.rkey) is None
    assert not mr.valid


def test_mr_local_io(hosts):
    mr = hosts.mr_a
    mr.write(10, b"abc")
    assert mr.read(10, 3) == b"abc"
