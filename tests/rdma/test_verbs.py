"""Verbs semantics: writes, sends, reads, immediates, completions."""

import pytest

from repro.rdma import (
    Opcode,
    QPState,
    QPStateError,
    RdmaError,
    RecvWR,
    SendWR,
    WCOpcode,
    WCStatus,
    sge,
)


def run_op(hosts, wr, responder_setup=None):
    """Post *wr* on qp_a, run to completion, return (send_wcs, recv_wcs)."""
    env = hosts.env
    if responder_setup:
        responder_setup()
    hosts.qp_a.post_send(wr)
    env.run()
    return hosts.send_cq_a.poll(), hosts.recv_cq_b.poll()


def test_rdma_write_moves_bytes(hosts):
    hosts.mr_a.write(0, b"rdma-payload")
    wr = SendWR(
        opcode=Opcode.RDMA_WRITE,
        local=sge(hosts.mr_a, 0, 12),
        remote_addr=hosts.mr_b.addr + 100,
        rkey=hosts.mr_b.rkey,
    )
    send_wcs, recv_wcs = run_op(hosts, wr)
    assert hosts.mr_b.read(100, 12) == b"rdma-payload"
    assert len(send_wcs) == 1 and send_wcs[0].ok
    assert send_wcs[0].opcode is WCOpcode.RDMA_WRITE
    # Plain WRITE generates no responder completion.
    assert recv_wcs == []


def test_rdma_write_unsignaled_no_completion(hosts):
    wr = SendWR(
        opcode=Opcode.RDMA_WRITE,
        local=sge(hosts.mr_a, 0, 4),
        remote_addr=hosts.mr_b.addr,
        rkey=hosts.mr_b.rkey,
        signaled=False,
    )
    send_wcs, _ = run_op(hosts, wr)
    assert send_wcs == []


def test_write_with_imm_consumes_recv_and_delivers_imm(hosts):
    hosts.mr_a.write(0, b"\x11" * 32)

    def setup():
        hosts.qp_b.post_recv(RecvWR(local=sge(hosts.mr_b)))

    wr = SendWR(
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        local=sge(hosts.mr_a, 0, 32),
        remote_addr=hosts.mr_b.addr,
        rkey=hosts.mr_b.rkey,
        imm_data=0xCAFE,
    )
    send_wcs, recv_wcs = run_op(hosts, wr, setup)
    assert len(recv_wcs) == 1
    wc = recv_wcs[0]
    assert wc.ok
    assert wc.opcode is WCOpcode.RECV_RDMA_WITH_IMM
    assert wc.imm_data == 0xCAFE
    assert wc.byte_len == 32
    assert hosts.mr_b.read(0, 32) == b"\x11" * 32


def test_send_recv_roundtrip(hosts):
    hosts.mr_a.write(0, b"send-data")

    def setup():
        hosts.qp_b.post_recv(RecvWR(local=sge(hosts.mr_b, 64, 64)))

    wr = SendWR(opcode=Opcode.SEND, local=sge(hosts.mr_a, 0, 9))
    send_wcs, recv_wcs = run_op(hosts, wr, setup)
    assert recv_wcs[0].opcode is WCOpcode.RECV
    assert recv_wcs[0].byte_len == 9
    assert hosts.mr_b.read(64, 9) == b"send-data"
    assert send_wcs[0].ok


def test_send_with_imm(hosts):
    def setup():
        hosts.qp_b.post_recv(RecvWR(local=sge(hosts.mr_b)))

    wr = SendWR(opcode=Opcode.SEND_WITH_IMM, local=sge(hosts.mr_a, 0, 4), imm_data=7)
    _, recv_wcs = run_op(hosts, wr, setup)
    assert recv_wcs[0].imm_data == 7


def test_send_with_imm_requires_imm(hosts):
    with pytest.raises(RdmaError):
        hosts.qp_a.post_send(SendWR(opcode=Opcode.SEND_WITH_IMM, local=sge(hosts.mr_a, 0, 4)))


def test_send_too_big_for_recv_buffer_errors_both_sides(hosts):
    def setup():
        hosts.qp_b.post_recv(RecvWR(local=sge(hosts.mr_b, 0, 4)))

    wr = SendWR(opcode=Opcode.SEND, local=sge(hosts.mr_a, 0, 100))
    send_wcs, recv_wcs = run_op(hosts, wr, setup)
    assert send_wcs[0].status is WCStatus.REM_INV_REQ_ERR
    assert recv_wcs[0].status is WCStatus.LOC_LEN_ERR
    assert hosts.qp_b.state is QPState.ERR


def test_rdma_read_pulls_remote_bytes(hosts):
    hosts.mr_b.write(200, b"remote-secret")
    wr = SendWR(
        opcode=Opcode.RDMA_READ,
        local=sge(hosts.mr_a, 0, 13),
        remote_addr=hosts.mr_b.addr + 200,
        rkey=hosts.mr_b.rkey,
    )
    send_wcs, _ = run_op(hosts, wr)
    assert send_wcs[0].ok
    assert send_wcs[0].opcode is WCOpcode.RDMA_READ
    assert hosts.mr_a.read(0, 13) == b"remote-secret"


def test_rnr_retry_succeeds_when_recv_posted_late(hosts):
    env = hosts.env
    wr = SendWR(opcode=Opcode.SEND, local=sge(hosts.mr_a, 0, 4))
    hosts.qp_a.post_send(wr)

    def late_recv():
        yield env.timeout(25_000)  # a few RNR timer periods
        hosts.qp_b.post_recv(RecvWR(local=sge(hosts.mr_b)))

    env.process(late_recv())
    env.run()
    send_wcs = hosts.send_cq_a.poll()
    assert send_wcs[0].ok


def test_rnr_retry_exhausted_errors(hosts):
    wr = SendWR(opcode=Opcode.SEND, local=sge(hosts.mr_a, 0, 4))
    send_wcs, _ = run_op(hosts, wr)  # no recv ever posted
    assert send_wcs[0].status is WCStatus.RNR_RETRY_EXC_ERR
    assert hosts.qp_a.state is QPState.ERR


def test_post_send_requires_rts(hosts):
    qp = hosts.nic_a.create_qp(hosts.pd_a, hosts.send_cq_a)
    with pytest.raises(QPStateError):
        qp.post_send(SendWR(opcode=Opcode.SEND, local=sge(hosts.mr_a, 0, 4)))


def test_post_recv_rejected_in_error_state(hosts):
    from repro.rdma import QPState

    qp = hosts.nic_a.create_qp(hosts.pd_a, hosts.send_cq_a)
    # Pre-connection posting is allowed (servers pre-post receives).
    qp.post_recv(RecvWR(local=sge(hosts.mr_a)))
    qp.modify(QPState.INIT)
    qp.modify(QPState.ERR)
    with pytest.raises(QPStateError):
        qp.post_recv(RecvWR(local=sge(hosts.mr_a)))


def test_inline_rejects_oversized(hosts):
    with pytest.raises(RdmaError):
        hosts.qp_a.post_send(
            SendWR(
                opcode=Opcode.RDMA_WRITE,
                local=sge(hosts.mr_a, 0, 1024),
                remote_addr=hosts.mr_b.addr,
                rkey=hosts.mr_b.rkey,
                inline=True,
            )
        )


def test_inline_rejected_for_read(hosts):
    with pytest.raises(RdmaError):
        hosts.qp_a.post_send(
            SendWR(
                opcode=Opcode.RDMA_READ,
                local=sge(hosts.mr_a, 0, 8),
                remote_addr=hosts.mr_b.addr,
                rkey=hosts.mr_b.rkey,
                inline=True,
            )
        )


def test_sge_validation(hosts):
    with pytest.raises(RdmaError):
        sge(hosts.mr_a, 4000, 1000).validate()  # exceeds MR
    with pytest.raises(RdmaError):
        sge(hosts.mr_a, -1, 10).validate()
    mr = hosts.pd_a.register(hosts.mr_a.block)
    mr.deregister()
    with pytest.raises(RdmaError):
        sge(mr, 0, 4).validate()


def test_rc_ordering_two_writes_then_imm(hosts):
    """Writes posted in order land in order; the IMM flags the last one."""
    env = hosts.env
    hosts.mr_a.write(0, b"AAAA")
    hosts.mr_a.write(4, b"BBBB")
    hosts.qp_b.post_recv(RecvWR(local=sge(hosts.mr_b)))
    hosts.qp_a.post_send(
        SendWR(
            opcode=Opcode.RDMA_WRITE,
            local=sge(hosts.mr_a, 0, 4),
            remote_addr=hosts.mr_b.addr,
            rkey=hosts.mr_b.rkey,
            signaled=False,
        )
    )
    hosts.qp_a.post_send(
        SendWR(
            opcode=Opcode.RDMA_WRITE_WITH_IMM,
            local=sge(hosts.mr_a, 4, 4),
            remote_addr=hosts.mr_b.addr + 4,
            rkey=hosts.mr_b.rkey,
            imm_data=1,
        )
    )
    env.run()
    recv_wcs = hosts.recv_cq_b.poll()
    assert len(recv_wcs) == 1  # only the IMM write completes a recv
    assert hosts.mr_b.read(0, 8) == b"AAAABBBB"


def test_loopback_same_nic(hosts):
    """Two QPs on the same NIC can talk over loopback."""
    nic = hosts.nic_a
    pd = nic.create_pd()
    block1, block2 = nic.alloc(64), nic.alloc(64)
    from repro.rdma import Access, QueuePair

    mr1 = pd.register(block1, Access.rw())
    mr2 = pd.register(block2, Access.rw())
    cq1, cq2 = nic.create_cq(), nic.create_cq()
    qp1 = nic.create_qp(pd, cq1)
    qp2 = nic.create_qp(pd, cq2)
    QueuePair.connect_pair(qp1, qp2)
    mr1.write(0, b"loopback")
    qp1.post_send(
        SendWR(opcode=Opcode.RDMA_WRITE, local=sge(mr1, 0, 8), remote_addr=mr2.addr, rkey=mr2.rkey)
    )
    hosts.env.run()
    assert mr2.read(0, 8) == b"loopback"
    assert cq1.poll()[0].ok
