"""Parallel-vs-serial determinism: fan-out must not change any result.

The contract (docs/architecture.md, "Parallel execution"): every run is
an independent, explicitly seeded simulation, so executing it in a
worker process -- in any order, on any schedule -- yields bit-identical
simulated nanoseconds, event counts, and latency series.  Wall-clock
fields are the only thing allowed to differ.
"""

import pytest

from repro.analysis.sweep import ParallelSweep, Sweep
from repro.experiments.bench import bench_invocation, bench_pingpong
from repro.experiments.common import measure_rfaas_rtts
from repro.experiments.registry import run_experiment
from repro.parallel import RunSpec, fork_available, run_specs

FIG8_KWARGS = {"sizes": (64, 1024), "repetitions": 4}

needs_fork = pytest.mark.skipif(not fork_available(), reason="platform lacks fork")


@needs_fork
def test_fig8_parallel_matches_serial():
    """The fig8 sweep through 2 workers == the same sweep run inline."""
    serial = run_experiment("fig8", **FIG8_KWARGS)
    (parallel,) = run_specs(
        [
            RunSpec(
                "repro.experiments.registry:run_experiment",
                {"experiment_id": "fig8", **FIG8_KWARGS},
                index=0,
                label="fig8",
            )
        ],
        2,
    )
    assert parallel.sizes == serial.sizes
    assert parallel.series == serial.series
    assert parallel.p99 == serial.p99


@needs_fork
def test_sweep_parallel_matches_serial():
    """ParallelSweep over payload sizes == serial Sweep, point for point."""
    axes = {"payload_size": [64, 1024, 16384], "repetitions": [3]}
    serial = Sweep(measure_rfaas_rtts).run(**axes)
    fanned = ParallelSweep(measure_rfaas_rtts, parallel=2).run(**axes)
    assert not fanned.failures()
    assert len(serial.points) == len(fanned.points) == 3
    for ours, theirs in zip(serial.points, fanned.points):
        assert ours.params == theirs.params
        assert ours.index == theirs.index
        assert ours.result.stats == theirs.result.stats  # medians, p99, CIs in ns


@needs_fork
def test_bench_invocation_parallel_matches_serial():
    """Simulated fields of the bench scenario are execution-mode invariant."""
    serial = bench_invocation(repeats=2, parallel=1)
    fanned = bench_invocation(repeats=2, parallel=2)
    for key in ("invocations", "events_processed", "final_now_ns"):
        assert serial[key] == fanned[key]


@needs_fork
def test_bench_pingpong_median_ns_parallel_matches_serial():
    serial = bench_pingpong(repeats=2, parallel=1)
    fanned = bench_pingpong(repeats=2, parallel=2)
    assert serial["median_rtt_ns"] == fanned["median_rtt_ns"]
    assert serial["iterations"] == fanned["iterations"]
