"""Module-level factories for the parallel-engine tests.

Workers resolve factories by import path, so these must live in an
importable module rather than inside a test function.
"""

from __future__ import annotations

import os
import time


def double(x):
    return x * 2


def combine(x, y, seed=None):
    return (x, y, seed)


def boom(x):
    raise ValueError(f"bad point {x}")


def boom_for(x, bad):
    if x == bad:
        raise ValueError(f"bad point {x}")
    return x * 10


def sleepy(seconds):
    time.sleep(seconds)
    return seconds


def worker_pid():
    return os.getpid()


def count_pooled_timeouts():
    """Run a tiny simulation that trips the perf counters."""
    from repro import perf
    from repro.sim import Environment

    env = Environment()

    def ticker():
        for _ in range(50):
            yield env.timeout(10)

    env.process(ticker())
    env.run()
    hits = getattr(env, "timeout_pool_hits", 0)
    if perf.enabled:
        perf.counters.alloc_avoided += hits
    return hits


#: In-process call counter for cache-resume tests (serial execution
#: only: worker processes would increment their own copy).
CALLS = {"counted_double": 0}


def counted_double(x):
    CALLS["counted_double"] += 1
    return x * 2


def faulty_rtts(probability, seed, invocations=40):
    """Echo invocations over a flaky fabric; returns (rtts, faults).

    Exercises the full RNG draw order through ``Fabric.transfer_path``
    -- the determinism surface the cache layer must not perturb.
    """
    from repro.core import Deployment
    from repro.rdma.fabric import FaultModel
    from tests.core.conftest import make_package

    faults = FaultModel(probability=probability, seed=seed)
    dep = Deployment.build(executors=1, clients=1, faults=faults)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"ok")
        rtts = []
        for _ in range(invocations):
            future = inv.submit("echo", in_buf, 2, out_buf)
            result = yield future.wait()
            rtts.append(result.rtt_ns)
        return rtts

    rtts = dep.run(driver())
    return {"rtts": rtts, "faults_injected": faults.faults_injected}
