"""Module-level factories for the parallel-engine tests.

Workers resolve factories by import path, so these must live in an
importable module rather than inside a test function.
"""

from __future__ import annotations

import os
import time


def double(x):
    return x * 2


def combine(x, y, seed=None):
    return (x, y, seed)


def boom(x):
    raise ValueError(f"bad point {x}")


def boom_for(x, bad):
    if x == bad:
        raise ValueError(f"bad point {x}")
    return x * 10


def sleepy(seconds):
    time.sleep(seconds)
    return seconds


def worker_pid():
    return os.getpid()


def count_pooled_timeouts():
    """Run a tiny simulation that trips the perf counters."""
    from repro import perf
    from repro.sim import Environment

    env = Environment()

    def ticker():
        for _ in range(50):
            yield env.timeout(10)

    env.process(ticker())
    env.run()
    hits = getattr(env, "timeout_pool_hits", 0)
    if perf.enabled:
        perf.counters.alloc_avoided += hits
    return hits
