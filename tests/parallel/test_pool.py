"""Engine correctness: RunSpec round-trips, ordering, failures, perf merge."""

import pickle

import pytest

from repro import perf
from repro.parallel import (
    FailedPoint,
    RunSpec,
    available_workers,
    resolve_workers,
    run_specs,
    spec_for_callable,
)
from repro.sim.rng import RngStreams, derive_seed
from tests.parallel import factories


def test_runspec_resolve_and_call():
    spec = RunSpec("tests.parallel.factories:double", {"x": 21})
    assert spec.resolve() is factories.double
    assert spec.call() == 42


def test_runspec_is_picklable():
    spec = RunSpec("tests.parallel.factories:combine", {"x": 1, "y": 2}, seed=7, seed_arg="seed")
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.call() == (1, 2, 7)


def test_runspec_seed_injection():
    spec = RunSpec(
        "tests.parallel.factories:combine",
        {"x": 1, "y": 2},
        seed=derive_seed(0xC0FFEE, "point"),
        seed_arg="seed",
    )
    assert spec.call() == (1, 2, derive_seed(0xC0FFEE, "point"))


def test_runspec_bad_path_rejected():
    with pytest.raises(ValueError):
        RunSpec("no-colon-here", {}).resolve()
    with pytest.raises(ModuleNotFoundError):
        RunSpec("no.such.module:fn", {}).resolve()


def test_spec_for_callable_round_trip():
    spec = spec_for_callable(factories.double, {"x": 3}, index=5, label="pt")
    assert spec.factory == "tests.parallel.factories:double"
    assert spec.index == 5
    assert spec.call() == 6


def test_spec_for_callable_rejects_lambdas_and_closures():
    with pytest.raises(ValueError):
        spec_for_callable(lambda x: x, {"x": 1})

    def local(x):
        return x

    with pytest.raises(ValueError):
        spec_for_callable(local, {"x": 1})


def test_derive_seed_matches_spawn_chain():
    root = 1234
    assert derive_seed(root, "a") == RngStreams(root).spawn("a").root_seed
    assert (
        derive_seed(root, "a", "b")
        == RngStreams(root).spawn("a").spawn("b").root_seed
    )
    assert RngStreams(root).spawn_seed("a") == derive_seed(root, "a")
    assert derive_seed(root, "a") != derive_seed(root, "b")


@pytest.mark.parametrize("workers", [1, 2])
def test_run_specs_preserves_input_order(workers):
    specs = [
        RunSpec("tests.parallel.factories:double", {"x": x}, index=i)
        for i, x in enumerate([5, 3, 8, 1])
    ]
    assert run_specs(specs, workers) == [10, 6, 16, 2]


@pytest.mark.parametrize("workers", [1, 2])
def test_run_specs_chunked(workers):
    specs = [
        RunSpec("tests.parallel.factories:double", {"x": x}, index=i)
        for i, x in enumerate(range(7))
    ]
    assert run_specs(specs, workers, chunksize=3) == [2 * x for x in range(7)]


@pytest.mark.parametrize("workers", [1, 2])
def test_failing_spec_becomes_failed_point_and_rest_completes(workers):
    specs = [
        RunSpec(
            "tests.parallel.factories:boom_for",
            {"x": x, "bad": 2},
            index=i,
            label=f"pt{x}",
        )
        for i, x in enumerate([1, 2, 3])
    ]
    results = run_specs(specs, workers)
    assert results[0] == 10
    assert results[2] == 30
    failed = results[1]
    assert isinstance(failed, FailedPoint)
    assert failed.error_type == "ValueError"
    assert "bad point 2" in failed.message
    assert "Traceback" in failed.traceback and "boom" in failed.traceback
    assert failed.params == {"x": 2, "bad": 2}
    assert not failed  # falsy, so .filter(bool)-style cleanup works


def test_timeout_yields_failed_point():
    specs = [
        RunSpec("tests.parallel.factories:sleepy", {"seconds": 30}, index=0, label="slow"),
        RunSpec("tests.parallel.factories:double", {"x": 4}, index=1),
    ]
    results = run_specs(specs, 2, timeout_s=1.0)
    assert isinstance(results[0], FailedPoint)
    assert results[0].error_type == "TimeoutError"
    assert results[1] == 8


def test_parallel_runs_in_separate_processes():
    import os

    specs = [RunSpec("tests.parallel.factories:worker_pid", index=i) for i in range(2)]
    pids = run_specs(specs, 2)
    assert all(isinstance(pid, int) for pid in pids)
    assert os.getpid() not in pids


def test_perf_counters_merge_across_workers():
    serial_hits = factories.count_pooled_timeouts()
    assert serial_hits > 0

    perf.reset()
    perf.enable()
    try:
        run_specs(
            [
                RunSpec("tests.parallel.factories:count_pooled_timeouts", index=i)
                for i in range(3)
            ],
            2,
        )
        merged = perf.snapshot()
    finally:
        perf.disable()
        perf.reset()
    assert merged["alloc_avoided"] == 3 * serial_hits


def test_empty_specs():
    assert run_specs([], 4) == []


def test_available_workers_positive():
    assert available_workers() >= 1


def test_resolve_workers_fallback_chain():
    """One shared 'auto' chain for the pool, sweeps, bench, and CLI."""
    auto = available_workers()
    for requested in (None, 0, -1, "auto", "AUTO", "", "  auto "):
        assert resolve_workers(requested) == auto
    assert resolve_workers(1) == 1
    assert resolve_workers(7) == 7
    assert resolve_workers("7") == 7
    with pytest.raises(ValueError):
        resolve_workers("seven")
