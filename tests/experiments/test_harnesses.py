"""Quick-mode smoke tests for every experiment harness + the CLI."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.__main__ import main as cli_main


def test_registry_complete():
    expected = {
        "fig1",
        "fig2",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "table1",
        "billing",
        "leases",
        "softroce",
        "multitenant",
        "multitenant-rpc",
        "pipelining",
        "concurrency",
        "warmpool",
        "suite",
        "scale",
        "control",
        "coldstart",
    }
    assert set(EXPERIMENTS) == expected
    for experiment in EXPERIMENTS.values():
        assert experiment.description
        assert callable(experiment.run)


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("fig99")


@pytest.mark.parametrize("experiment_id", ["fig2", "fig9", "billing", "leases", "table1"])
def test_quick_mode_produces_tables(experiment_id):
    result = run_experiment(experiment_id, quick=True)
    rendered = result.table().render()
    assert rendered.count("\n") >= 3  # header + separator + rows


def test_quick_mode_overrides_merge():
    result = run_experiment("fig8", quick=True, sizes=(2, 64))
    assert result.sizes == (2, 64)


def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "multitenant" in out


def test_cli_runs_experiment(capsys):
    assert cli_main(["fig9", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "cold start breakdown" in out
    assert "wall]" in out


def test_cli_unknown_experiment(capsys):
    assert cli_main(["fig99"]) == 2


def test_fig8_quick_shape():
    result = run_experiment("fig8", quick=True)
    assert result.overhead_vs_rdma("hot", 2) == pytest.approx(326, abs=15)


def test_softroce_quick_shape():
    result = run_experiment("softroce", quick=True)
    assert result.slowdown(64) > 3


def test_multitenant_rpc_outcomes_populated():
    result = run_experiment("multitenant-rpc", quick=True)
    for outcome in result.outcomes.values():
        assert outcome.rtts_ns
        assert outcome.cost > 0


def test_multitenant_scale_quick_per_tenant_outcomes():
    result = run_experiment("multitenant", quick=True, partitioning="shared")
    assert result.partitioning == "shared"
    assert result.completed + result.congested == result.invocations
    assert set(result.tenants) == {"latency-critical", "bursty-service", "batch-analytics"}
    for stats in result.tenants.values():
        assert stats.dispatched == stats.succeeded + stats.missed
        assert stats.latency is not None and stats.latency.p99 >= stats.latency.p95
    rendered = result.table().render()
    assert rendered.count("\n") >= 5
