"""Multi-tenant scale engine: bit-identity, sharding, and pool plans.

The contract under test mirrors the single-stream scale engine's: the
vectorized batch kernel and the per-event referee FSM must agree on
every simulated-domain output -- here *per tenant*: outcome counts
(SUCCESS / CONGESTION / DEADLINE_MISSED), exact sojourn totals, and
histogram-derived tails -- across both schedulers, and (unsaturated) a
K-way shard split must merge back bit-identical to the 1-shard run.
"""

from dataclasses import replace

import pytest

from repro.experiments.scale import (
    MultiTenantConfig,
    _tenant_chunks,
    _tenant_pool_plan,
    run_tenant_scale,
)
from repro.workloads.tenants import TenantSpec, standard_mix

#: A saturated mix: pool far smaller than the in-flight demand, so
#: queueing, deadline misses, and (with a queue cap) congestion all
#: actually occur and the engines must agree on each of them.
SATURATED = dict(workers=48, seed=13)


def _specs(**overrides):
    specs = standard_mix(invocations=4_000, rate_scale=400.0, compute_scale=40.0)
    return [replace(spec, **overrides) for spec in specs] if overrides else specs


@pytest.mark.parametrize("partitioning", ["pinned", "shared", "overflow"])
def test_engines_bit_identical_across_partitionings(partitioning):
    fingerprints = [
        run_tenant_scale(
            specs=_specs(),
            partitioning=partitioning,
            scheduler=scheduler,
            admission=admission,
            **SATURATED,
        ).fingerprint()
        for scheduler in ("heap", "wheel")
        for admission in ("per-event", "batch")
    ]
    assert all(fp == fingerprints[0] for fp in fingerprints[1:])
    assert fingerprints[0]["completed"] == 4_000
    # Saturation produced real per-tenant queueing/misses to agree on.
    assert fingerprints[0]["missed"] > 0
    assert all(t["dispatched"] > 0 for t in fingerprints[0]["tenants"].values())


@pytest.mark.parametrize("pool_policy", ["queue", "cold", "hybrid"])
def test_engines_bit_identical_across_pool_policies(pool_policy):
    specs = _specs(queue_cap=32)
    results = [
        run_tenant_scale(
            specs=specs,
            partitioning="overflow",
            pool_policy=pool_policy,
            hybrid_threshold=8,
            scheduler=scheduler,
            admission=admission,
            **SATURATED,
        )
        for scheduler in ("heap", "wheel")
        for admission in ("per-event", "batch")
    ]
    base = results[0].fingerprint()
    assert all(r.fingerprint() == base for r in results[1:])
    if pool_policy == "queue":
        assert base["congested"] > 0 and base["cold_starts"] == 0
    else:
        assert base["cold_starts"] > 0
    # Accounting closes: every arrival either completed or was rejected.
    assert base["completed"] + base["congested"] == 4_000


@pytest.mark.parametrize("shards", [2, 3])
def test_unsaturated_shard_split_is_exact(shards):
    """K-way partition split merges bit-identical to the 1-shard run
    when the pool never saturates (no cross-shard queue interaction)."""
    specs = standard_mix(invocations=3_000, rate_scale=50.0)
    kwargs = dict(specs=specs, workers=8_192, partitioning="overflow", seed=5)
    serial = run_tenant_scale(**kwargs)
    sharded = run_tenant_scale(shards=shards, **kwargs)
    assert sharded.fingerprint() == serial.fingerprint()
    assert sharded.shards == shards


def test_per_tenant_outcome_conservation_and_stats():
    result = run_tenant_scale(specs=_specs(queue_cap=64), partitioning="pinned", **SATURATED)
    total_arrived = 0
    for stats in result.tenants.values():
        assert stats.arrived == stats.dispatched + stats.congested
        assert stats.succeeded + stats.missed == stats.dispatched
        assert 0.0 <= stats.miss_rate <= 1.0
        assert 0.0 <= stats.congestion_rate <= 1.0
        assert stats.latency.mean == stats.sojourn_total / stats.dispatched
        total_arrived += stats.arrived
    assert total_arrived == result.invocations
    assert result.events_processed > 0
    assert "(all)" in result.table().render()


def test_tenant_chunks_shard_union_is_global_stream():
    """The K shards' merged calendars tile the global one exactly."""
    config = MultiTenantConfig(specs=tuple(standard_mix(invocations=2_000)))
    serial = []
    for times, tenants, services in _tenant_chunks(config, 0, 1):
        serial.extend(zip(times, tenants, services))
    recombined = [[] for _ in range(3)]
    for shard in range(3):
        for times, tenants, services in _tenant_chunks(config, shard, 3):
            recombined[shard].extend(zip(times, tenants, services))
    interleaved = []
    cursors = [0, 0, 0]
    for index in range(len(serial)):
        shard = index % 3
        interleaved.append(recombined[shard][cursors[shard]])
        cursors[shard] += 1
    assert interleaved == serial
    assert [t for t, _, _ in serial] == sorted(t for t, _, _ in serial)


def test_pool_plan_partitions_and_validation():
    specs = tuple(standard_mix())
    pinned, shared = _tenant_pool_plan(specs, 1_000, "pinned")
    assert sum(pinned) == 1_000 and shared == 0
    pinned, shared = _tenant_pool_plan(specs, 1_000, "shared")
    assert pinned == [0, 0, 0] and shared == 1_000
    pinned, shared = _tenant_pool_plan(specs, 1_001, "overflow")
    assert sum(pinned) + shared == 1_001 and shared >= 501
    with pytest.raises(ValueError):
        _tenant_pool_plan(specs, 2, "pinned")  # thinner than one slot each
    with pytest.raises(ValueError):
        _tenant_pool_plan(specs, 1_000, "bogus")


def test_run_validation_rejects_bad_knobs():
    specs = standard_mix()
    with pytest.raises(ValueError):
        run_tenant_scale(specs=specs, partitioning="bogus")
    with pytest.raises(ValueError):
        run_tenant_scale(specs=specs, admission="bogus")
    with pytest.raises(ValueError):
        run_tenant_scale(specs=specs, pool_policy="bogus")
    with pytest.raises(ValueError):
        run_tenant_scale(specs=[])
    with pytest.raises(ValueError):
        run_tenant_scale(specs=[TenantSpec(name="a"), TenantSpec(name="a")])
    with pytest.raises(ValueError):
        run_tenant_scale(specs=specs, shards=0)
    with pytest.raises(ValueError):
        run_tenant_scale(specs=specs, shards=10**9)
