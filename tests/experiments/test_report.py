"""Markdown report generator."""

import pytest

from repro.experiments.report import generate_report, write_report


def test_report_for_selected_experiments():
    text = generate_report(["fig9", "leases"], quick=True)
    assert "# rFaaS reproduction" in text
    assert "## fig9" in text and "## leases" in text
    assert "paper: ~25 ms" in text
    assert "centralized placement slowdown" in text
    assert "```" in text  # tables included


def test_report_unknown_experiment():
    with pytest.raises(KeyError):
        generate_report(["fig99"])


def test_write_report(tmp_path):
    path = write_report(tmp_path / "r.md", experiment_ids=["billing"], quick=True)
    assert path.read_text().startswith("# rFaaS reproduction")


def test_cli_report(tmp_path, capsys):
    from repro.experiments.__main__ import main as cli_main

    out = tmp_path / "report.md"
    assert cli_main(["report", "--quick", "--out", str(out)]) == 0
    text = out.read_text()
    # Every registered experiment appears.
    from repro.experiments import EXPERIMENTS

    for key in EXPERIMENTS:
        assert f"## {key}" in text
