"""Lease-lane bit-identity and plumbing at the experiment layer.

The acceptance contract: ``lease_lane="on"`` must produce fingerprints
bit-identical to ``lease_lane="off"`` (the PR 6 batch kernel) and to
the per-event heap referee -- across all three arrival shapes, under
adaptive re-anchors, saturated and unsaturated, and across K-shard
decompositions.  Plus the CLI/config validation boundary, the
``--profile`` path, and the bench guard's lane gauge.
"""

import json

import pytest

from repro.experiments.bench import check_regression
from repro.experiments.scale import run_scale, run_scale_sharded
from repro.sim.clock import us

#: Saturating: the backlog (exact scalar drain) path runs.
SATURATED = {"invocations": 6_000, "workers": 1_024, "mean_arrival_gap_ns": us(25)}
#: Unsaturated: pure deferred/vectorized regime.
UNSATURATED = {"invocations": 3_000, "workers": 4_096, "mean_arrival_gap_ns": us(25)}


def _fp(**kwargs):
    return run_scale(**kwargs).fingerprint()


@pytest.mark.parametrize("shape", ["poisson", "bursty", "diurnal"])
@pytest.mark.parametrize("load", [SATURATED, UNSATURATED], ids=["saturated", "unsaturated"])
def test_lane_identity_across_shapes(shape, load):
    kwargs = dict(load, arrival_shape=shape, granularity_bits="auto")
    heap = _fp(scheduler="heap", admission="per-event", **kwargs)
    off = _fp(scheduler="wheel", admission="batch", lease_lane="off", **kwargs)
    on = _fp(scheduler="wheel", admission="batch", lease_lane="on", **kwargs)
    assert heap == off
    assert off == on


def test_lane_identity_under_forced_reanchors():
    # A fixed coarse geometry vs auto: the lane must not care which
    # geometry the wheel re-anchors through.
    kwargs = dict(UNSATURATED, arrival_shape="bursty")
    fixed = _fp(
        scheduler="wheel", admission="batch", lease_lane="on",
        granularity_bits=24, **kwargs,
    )
    auto = _fp(
        scheduler="wheel", admission="batch", lease_lane="on",
        granularity_bits="auto", **kwargs,
    )
    assert fixed == auto


def test_lane_gauges_populate():
    result = run_scale(
        scheduler="wheel", admission="batch", lease_lane="on", **UNSATURATED
    )
    occ = result.occupancy
    assert occ["lane_entries_peak"] > 0
    assert occ["lane_slabs"] > 0
    assert occ["lane_max_slab"] >= 1
    off = run_scale(
        scheduler="wheel", admission="batch", lease_lane="off", **UNSATURATED
    )
    # Lane-off runs still report the gauges (all zero), keeping the
    # occupancy key set stable for the bench trajectory.
    assert off.occupancy["lane_entries_peak"] == 0
    assert off.occupancy["lane_slabs"] == 0


def test_shard_invariance_with_lane():
    kwargs = dict(UNSATURATED, lease_lane="on")
    one = run_scale_sharded(shards=1, parallel=1, **kwargs)
    two = run_scale_sharded(shards=2, parallel=1, **kwargs)
    fp1, fp2 = one.fingerprint(), two.fingerprint()
    assert fp1.keys() == fp2.keys()
    for key in fp1:
        if key == "latency_mean_ns":
            assert abs(fp1[key] - fp2[key]) <= 1e-9 * max(abs(fp1[key]), 1.0)
        else:
            assert fp1[key] == fp2[key], key


def test_shard_k1_matches_single_driver_with_lane():
    single = run_scale(
        scheduler="wheel", admission="batch", lease_lane="on", **UNSATURATED
    )
    sharded = run_scale_sharded(shards=1, parallel=1, lease_lane="on", **UNSATURATED)
    assert single.fingerprint() == sharded.fingerprint()


def test_lease_lane_validation():
    with pytest.raises(ValueError, match="lease_lane"):
        run_scale(scheduler="wheel", lease_lane="maybe", **UNSATURATED)
    with pytest.raises(ValueError, match="lease_lane"):
        run_scale_sharded(shards=2, lease_lane="bogus", **UNSATURATED)


def test_profile_prints_report(capsys):
    run_scale(
        scheduler="wheel", admission="batch", lease_lane="on",
        profile=True, **UNSATURATED,
    )
    out = capsys.readouterr().out
    assert "cumulative" in out and "drive" in out


def test_profile_archives_to_path(tmp_path):
    dest = tmp_path / "scale.pstats"
    run_scale(
        scheduler="wheel", admission="batch", lease_lane="on",
        profile=str(dest), **UNSATURATED,
    )
    assert dest.exists() and dest.stat().st_size > 0
    assert (tmp_path / "scale.pstats.txt").exists()


def test_profile_rejected_on_sharded_path():
    with pytest.raises(ValueError, match="single-shard"):
        run_scale(
            scheduler="wheel", admission="batch", profile=True,
            shards=2, **UNSATURATED,
        )


# -- bench guard: lane re-arm explosion --------------------------------


def _doc(tmp_path, scale_entry):
    path = tmp_path / "BENCH.json"
    path.write_text(
        json.dumps(
            {
                "schema": "rfaas-repro-bench-v1",
                "entries": {
                    "base": {
                        "kernel_event_throughput": {"events_per_sec": 1_000_000},
                        "scale_openloop": scale_entry,
                    }
                },
            }
        )
    )
    return str(path)


def _results(rearm_batches):
    return {
        "kernel_event_throughput": {"events_per_sec": 1_000_000},
        "scale_openloop": {"lane_rearm_batches": rearm_batches},
    }


def test_lane_rearm_guard_passes_within_budget(tmp_path):
    baseline = _doc(tmp_path, {"lane_rearm_batches": 40})
    assert check_regression(_results(60), baseline, "base") == []
    assert check_regression(_results(160), baseline, "base") == []  # 4x of 40


def test_lane_rearm_guard_fails_on_explosion(tmp_path):
    baseline = _doc(tmp_path, {"lane_rearm_batches": 40})
    problems = check_regression(_results(161), baseline, "base")
    assert any("lane_rearm_batches" in p for p in problems)


def test_lane_rearm_guard_skips_old_baselines(tmp_path):
    baseline = _doc(tmp_path, {})  # recorded before the lane existed
    assert check_regression(_results(10_000), baseline, "base") == []
