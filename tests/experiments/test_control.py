"""Control-plane scale engine: kernel vs reference bit-identity, plus
scale-shaped death/reclaim behavior on the real manager.
"""

import numpy as np
import pytest

from repro.core.resource_manager import ResourceManager
from repro.experiments.control import (
    ControlConfig,
    control_streams,
    run_control,
)
from repro.rdma.fabric import Fabric
from repro.sim.wheel import new_environment

#: Small enough that the per-event reference driver stays fast in CI.
TINY = dict(executors=32, requests=400, deaths=6)


def fingerprints(**kwargs):
    merged = dict(TINY)
    merged.update(kwargs)
    kernel = run_control(driver="kernel", **merged)
    reference = run_control(driver="reference", **merged)
    return kernel, reference


class TestDriverAgreement:
    def test_bit_identical_with_churn(self):
        kernel, reference = fingerprints()
        assert kernel.fingerprint() == reference.fingerprint()
        assert kernel.counts["dead_nodes"] > 0
        assert kernel.counts["steals"] > 0

    def test_bit_identical_without_churn(self):
        kernel, reference = fingerprints(churn=False)
        assert kernel.fingerprint() == reference.fingerprint()
        assert kernel.counts["steals"] == 0
        assert kernel.counts["revives"] == 0

    @pytest.mark.parametrize("engine", ["heap", "wheel"])
    def test_engines_agree_per_driver(self, engine):
        kernel = run_control(driver="kernel", engine=engine, **TINY)
        reference = run_control(driver="reference", engine=engine, **TINY)
        assert kernel.fingerprint() == reference.fingerprint()

    def test_verify_flag_runs_referee(self):
        result = run_control(driver="kernel", verify=True, **TINY)
        assert result.driver == "kernel"

    def test_all_capacity_returned_at_horizon(self):
        kernel, reference = fingerprints()
        config = ControlConfig(**TINY)
        total_cores = config.executors * config.cores_per_executor
        total_memory = config.executors * config.memory_per_executor
        assert kernel.final_free_cores == reference.final_free_cores == total_cores
        assert kernel.final_free_memory == reference.final_free_memory == total_memory

    def test_lease_events_accounting(self):
        kernel, _ = fingerprints()
        counts = kernel.counts
        assert kernel.lease_events == sum(
            counts[k]
            for k in (
                "grants", "denials", "renewals", "releases", "expiries",
                "steals", "steal_grants", "steal_denials", "steal_skipped",
            )
        )

    def test_table_renders(self):
        kernel = run_control(driver="kernel", **TINY)
        text = kernel.table().render()
        assert "Control plane" in text
        assert "grants/sec" in text


class TestConfigValidation:
    def test_unknown_driver(self):
        with pytest.raises(ValueError, match="driver"):
            run_control(driver="warp")

    def test_off_grid_period_rejected(self):
        with pytest.raises(ValueError, match="mod 16"):
            ControlConfig(renew_period_ns=100_000_001)

    def test_timeout_must_exceed_period(self):
        with pytest.raises(ValueError, match="exceed"):
            ControlConfig(renew_period_ns=100_000_000, lease_timeout_ns=80_000_002)

    def test_streams_deterministic(self):
        config = ControlConfig(**TINY)
        a, b = control_streams(config), control_streams(config)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.end_planned, b.end_planned)
        assert np.array_equal(a.churn.death_times_ns, b.churn.death_times_ns)
        # Arrivals sit on the residue grid the drivers rely on.
        assert np.all(a.times % 16 == 0)
        assert np.all(a.churn.death_times_ns % 16 == 4)


class _RecordingConn:
    """Client-side connection stub that records termination announcements."""

    alive = True

    def __init__(self):
        self.messages = []

    def notify(self, message):
        self.messages.append(dict(message))


@pytest.mark.parametrize("engine", ["heap", "wheel"])
class TestDeclareDeadAtScale:
    """Scale-shaped death handling on the real RPC manager: one node
    death terminates every hosted lease and announces each one to the
    affected client, identically on both event engines."""

    EXECUTORS = 48
    LEASES = 96

    def _build(self, engine):
        env = new_environment(engine)
        manager = ResourceManager(Fabric(env).attach("m"), name="m")
        for i in range(self.EXECUTORS):
            manager.register_record(
                f"x{i:03d}", host=f"x{i:03d}", port=1, cores=36, memory_bytes=64 << 30
            )
        conn = _RecordingConn()
        for i in range(self.LEASES):
            response = manager.grant_lease(
                {"client": f"c{i % 8}", "cores": 2, "memory_bytes": 1 << 30},
                conn,
            )
            assert response["type"] == "lease_granted"
        return env, manager, conn

    def _trace(self, engine):
        env, manager, conn = self._build(engine)
        victim = manager.executors["x007"]
        hosted = [lease.lease_id for lease in victim.leases]
        manager._handle_rpc({"type": "deregister_executor", "name": "x007"}, None)
        trace = {
            "hosted": hosted,
            "announced": [m["lease_id"] for m in conn.messages],
            "reasons": sorted({m["reason"] for m in conn.messages}),
            "free_cores": victim.free_cores,
            "active_after": len(manager.active_leases()),
        }
        # Revival restores the full envelope; the terminated leases stay gone.
        manager.revive_executor("x007")
        trace["revived_free_cores"] = victim.free_cores
        trace["leases_after_revive"] = len(victim.leases)
        manager.kill()
        return trace

    def test_death_terminates_and_announces_all_hosted_leases(self, engine):
        trace = self._trace(engine)
        assert len(trace["hosted"]) == self.LEASES // self.EXECUTORS
        # Every hosted lease announced, in the record's grant order.
        assert trace["announced"] == trace["hosted"]
        assert trace["reasons"] == ["executor x007 retired"]
        # Dead node keeps its capacity decremented until revival.
        assert trace["free_cores"] == 36 - 2 * len(trace["hosted"])
        assert trace["revived_free_cores"] == 36
        assert trace["leases_after_revive"] == 0
        assert trace["active_after"] == self.LEASES - len(trace["hosted"])

    def test_trace_identical_across_engines(self, engine):
        # Compare each engine's trace against the heap referee's.
        assert self._trace(engine) == self._trace("heap")

    def test_dead_node_excluded_until_revival(self, engine):
        env, manager, conn = self._build(engine)
        manager._handle_rpc({"type": "deregister_executor", "name": "x007"}, None)
        manager._rr_index = 7  # cursor parked on the dead node
        picked = manager._pick_executor(2, 1 << 30)
        assert picked is not None and picked.name != "x007"
        manager.revive_executor("x007")
        manager._rr_index = 7
        assert manager._pick_executor(2, 1 << 30).name == "x007"
        manager.kill()
