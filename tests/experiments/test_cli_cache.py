"""CLI surface: --cache round trips, cache subcommand, --parallel auto."""

import json
import pickle

import pytest

from repro.cache import STORE_SCHEMA, ResultCache
from repro.experiments.__main__ import _parallel_workers, main
from repro.parallel.pool import available_workers


def run_cli(*argv):
    return main(list(argv))


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_cached_experiment_hits_on_rerun(cache_dir, capsys):
    assert run_cli("table1", "--quick", "--cache", "--cache-dir", cache_dir) == 0
    first = capsys.readouterr().out
    assert "1 miss(es)" in first
    assert run_cli("table1", "--quick", "--cache", "--cache-dir", cache_dir) == 0
    second = capsys.readouterr().out
    assert "1 hit(s), 0 miss(es)" in second


def test_no_cache_is_the_default(cache_dir, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert run_cli("table1", "--quick") == 0
    assert "[cache" not in capsys.readouterr().out
    assert not (tmp_path / ".repro-cache").exists()


def test_cache_stats_and_clear(cache_dir, capsys):
    run_cli("table1", "--quick", "--cache", "--cache-dir", cache_dir)
    capsys.readouterr()

    assert run_cli("cache", "stats", "--cache-dir", cache_dir) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 1
    assert stats["lifetime"]["misses"] == 1

    assert run_cli("cache", "clear", "--cache-dir", cache_dir) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert run_cli("cache", "stats", "--cache-dir", cache_dir) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_cache_verify_detects_tampered_result(cache_dir, capsys):
    run_cli("table1", "--quick", "--cache", "--cache-dir", cache_dir)
    capsys.readouterr()
    assert run_cli("cache", "verify", "--cache-dir", cache_dir) == 0
    assert "verify OK" in capsys.readouterr().out

    # Rewrite the stored artifact with a forged (valid, wrong) result.
    cache = ResultCache(cache_dir)
    (key,) = cache.entries()
    artifact = cache.root / "objects" / key[:2] / f"{key}.pkl"
    envelope = pickle.loads(artifact.read_bytes())
    envelope["result"] = {"forged": True}
    artifact.write_bytes(pickle.dumps(envelope))

    assert run_cli("cache", "verify", "--cache-dir", cache_dir) == 1
    captured = capsys.readouterr()
    assert "verify FAILED" in captured.out
    assert "MISMATCH" in captured.err


def test_cache_unknown_action_errors(cache_dir, capsys):
    assert run_cli("cache", "defrag", "--cache-dir", cache_dir) == 2
    assert "unknown cache action" in capsys.readouterr().err


def test_schema_constant_matches_artifacts(cache_dir):
    run_cli("table1", "--quick", "--cache", "--cache-dir", cache_dir)
    index = json.loads((ResultCache(cache_dir).root / "index.json").read_text())
    assert index["schema"] == STORE_SCHEMA


def test_parallel_accepts_auto_and_integers():
    assert _parallel_workers("auto") == 0  # 0 = one per usable CPU downstream
    assert _parallel_workers("AUTO") == 0
    assert _parallel_workers("4") == 4
    with pytest.raises(Exception):
        _parallel_workers("many")


def test_granularity_bits_accepts_auto_and_valid_integers():
    from argparse import ArgumentTypeError

    from repro.experiments.__main__ import _granularity_bits

    assert _granularity_bits("auto") == "auto"
    assert _granularity_bits("AUTO") == "auto"
    assert _granularity_bits("16") == 16
    assert _granularity_bits("1") == 1
    assert _granularity_bits("40") == 40
    for bad in ("0", "-2", "41", "2.5", "fast"):
        with pytest.raises(ArgumentTypeError):
            _granularity_bits(bad)


def test_granularity_bits_rejected_at_the_cli():
    with pytest.raises(SystemExit) as excinfo:
        run_cli("scale", "--quick", "--granularity-bits", "nope")
    assert excinfo.value.code == 2


def test_available_workers_prefers_process_cpu_count(monkeypatch):
    import os

    monkeypatch.setattr(os, "process_cpu_count", lambda: 7, raising=False)
    assert available_workers() == 7
    monkeypatch.setattr(os, "process_cpu_count", lambda: None, raising=False)
    assert available_workers() >= 1
