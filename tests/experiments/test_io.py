"""Result serialization and the --json CLI flag."""

import json

import pytest

from repro.experiments import run_experiment
from repro.experiments.__main__ import main as cli_main
from repro.experiments.io import save_result, to_jsonable


def test_to_jsonable_dataclass_tree():
    result = run_experiment("fig9", quick=True)
    data = to_jsonable(result)
    assert "breakdowns" in data
    assert data["breakdowns"]["bare-metal"]["spawn_workers"] > 0
    json.dumps(data)  # fully serializable


def test_to_jsonable_key_flattening():
    data = to_jsonable({("hot", "docker", 1024): {1: 2.5}})
    assert data == {"hot/docker/1024": {"1": 2.5}}


def test_to_jsonable_scalars_and_bytes():
    assert to_jsonable(b"\x01\x02") == "0102"
    assert to_jsonable((1, "a", None, True)) == [1, "a", None, True]
    assert to_jsonable({1, 2} if False else [1, 2]) == [1, 2]


def test_save_result_roundtrip(tmp_path):
    result = run_experiment("billing", quick=True)
    path = save_result(result, tmp_path / "billing.json", "billing")
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "billing"
    assert payload["result"]["hot"]["cost"] > 0


def test_cli_json_flag(tmp_path, capsys):
    assert cli_main(["fig9", "--quick", "--json", str(tmp_path)]) == 0
    payload = json.loads((tmp_path / "fig9.json").read_text())
    assert payload["experiment"] == "fig9"
    assert "wrote" in capsys.readouterr().out
