"""Sharded scale engine: exactness, worker invariance, caching, shapes.

The contract under test (see ``run_scale_sharded``): the K-shard
decomposition of a scenario is part of its spec, and the merged result
is a pure function of that spec -- identical across repeats and across
``parallel`` worker counts.  In partition mode on an unsaturated pool
the decomposition is *exact*: K shards merge back to the 1-shard (and
legacy single-process) result, except the Welford mean which
reassociates within float rounding.
"""

import math

import pytest

from repro.experiments.scale import (
    ScaleResult,
    ShardedScaleResult,
    run_scale,
    run_scale_sharded,
)
from repro.sim.clock import us
from repro.sim.rng import derive_seed, shard_seed, shard_seeds

#: Pool never saturates (slots >= invocations): the exact-partition regime.
UNSATURATED = {"invocations": 1_500, "workers": 2_048, "mean_arrival_gap_ns": us(25)}
#: Pool saturates: the FIFO backlog path runs inside every shard.
SATURATED = {"invocations": 3_000, "workers": 256, "mean_arrival_gap_ns": us(25)}


def _agree(a, b, mean_rel=1e-9):
    """Fingerprints equal; the merged mean within float-reassociation."""
    assert a.keys() == b.keys()
    for key in a:
        if key == "latency_mean_ns":
            assert math.isclose(a[key], b[key], rel_tol=mean_rel), key
        else:
            assert a[key] == b[key], key


# -- seed derivation ---------------------------------------------------


def test_shard_seed_uses_derive_chain():
    assert shard_seed(0x5CA1E, 3) == derive_seed(0x5CA1E, "shard", "3")
    seeds = shard_seeds(0x5CA1E, 4)
    assert len(set(seeds)) == 4
    assert seeds[3] == shard_seed(0x5CA1E, 3)
    with pytest.raises(ValueError):
        shard_seeds(0x5CA1E, 0)


# -- exactness of the partition decomposition --------------------------


def test_one_shard_partition_equals_legacy_driver():
    legacy = run_scale(**UNSATURATED)
    sharded = run_scale_sharded(shards=1, parallel=1, **UNSATURATED)
    assert isinstance(legacy, ScaleResult)
    assert isinstance(sharded, ShardedScaleResult)
    assert sharded.fingerprint() == legacy.fingerprint()


def test_partition_is_exact_across_shard_counts_when_unsaturated():
    base = run_scale_sharded(shards=1, parallel=1, **UNSATURATED).fingerprint()
    for shards in (2, 3):
        other = run_scale_sharded(shards=shards, parallel=1, **UNSATURATED)
        _agree(base, other.fingerprint())
        assert other.queued == 0


def test_merged_result_independent_of_worker_count():
    serial = run_scale_sharded(shards=2, parallel=1, **SATURATED)
    forked = run_scale_sharded(shards=2, parallel=2, **SATURATED)
    assert serial.fingerprint() == forked.fingerprint()  # bit-for-bit
    assert serial.shard_seeds == forked.shard_seeds
    assert serial.queued > 0  # the backlog path actually ran


def test_repeat_determinism():
    a = run_scale_sharded(shards=2, parallel=1, **SATURATED)
    b = run_scale_sharded(shards=2, parallel=1, **SATURATED)
    assert a.fingerprint() == b.fingerprint()


def test_thin_mode_deterministic_but_distinct():
    thin1 = run_scale_sharded(shards=2, shard_split="thin", parallel=1, **UNSATURATED)
    thin2 = run_scale_sharded(shards=2, shard_split="thin", parallel=2, **UNSATURATED)
    part = run_scale_sharded(shards=2, parallel=1, **UNSATURATED)
    assert thin1.fingerprint() == thin2.fingerprint()
    assert thin1.final_now_ns != part.final_now_ns  # different realization
    assert thin1.completed == part.completed == UNSATURATED["invocations"]


# -- shape smoke through the sharded path ------------------------------


@pytest.mark.parametrize("shape", ["bursty", "diurnal"])
def test_arrival_shapes_complete_and_reproduce(shape):
    a = run_scale(arrival_shape=shape, shards=2, parallel=1, **UNSATURATED)
    b = run_scale(arrival_shape=shape, shards=2, parallel=1, **UNSATURATED)
    assert isinstance(a, ShardedScaleResult)
    assert a.completed == UNSATURATED["invocations"]
    assert a.fingerprint() == b.fingerprint()


# -- PR 6 engine: batch admission + adaptive wheel, every shape --------


@pytest.mark.parametrize("shape", ["poisson", "bursty", "diurnal"])
def test_batch_auto_invariant_across_shard_counts(shape):
    """The full PR 6 engine (adaptive wheel + batch admission) keeps the
    K-shard partition exact for every arrival shape, and batch
    admission is bit-identical to per-event admission of the same
    sharded streams."""
    fingerprints = {
        shards: run_scale(
            arrival_shape=shape,
            shards=shards,
            parallel=1,
            scheduler="wheel",
            granularity_bits="auto",
            admission="batch",
            **UNSATURATED,
        ).fingerprint()
        for shards in (1, 2)
    }
    _agree(fingerprints[1], fingerprints[2])
    per_event = run_scale(
        arrival_shape=shape,
        shards=2,
        parallel=1,
        scheduler="wheel",
        granularity_bits="auto",
        admission="per-event",
        **UNSATURATED,
    )
    assert per_event.fingerprint() == fingerprints[2]


def test_bursty_shape_saturates_harder_than_poisson():
    poisson = run_scale_sharded(shards=1, parallel=1, **SATURATED)
    bursty = run_scale_sharded(
        shards=1, parallel=1, arrival_shape="bursty", burst_len=256, **SATURATED
    )
    assert bursty.max_backlog >= poisson.max_backlog


# -- caching -----------------------------------------------------------


def test_shard_results_cached_per_shard(tmp_path):
    from repro.cache import ResultCache

    root = str(tmp_path / "cache")
    first = run_scale_sharded(shards=2, parallel=1, cache_dir=root, **UNSATURATED)
    assert ResultCache(root).stats()["entries"] == 2  # one entry per shard
    second = run_scale_sharded(shards=2, parallel=1, cache_dir=root, **UNSATURATED)
    assert second.fingerprint() == first.fingerprint()
    # A different shard count is a different spec: only its own shards run.
    run_scale_sharded(shards=3, parallel=1, cache_dir=root, **UNSATURATED)
    assert ResultCache(root).stats()["entries"] == 5


# -- guard rails -------------------------------------------------------


def test_rejects_degenerate_decompositions():
    with pytest.raises(ValueError):
        run_scale_sharded(shards=0, **UNSATURATED)
    with pytest.raises(ValueError):
        run_scale_sharded(invocations=4, workers=64, shards=8)
    with pytest.raises(ValueError):
        run_scale_sharded(invocations=64, workers=4, shards=8)
    with pytest.raises(RuntimeError, match="sharded scale run failed"):
        run_scale_sharded(shards=2, shard_split="nope", parallel=1, **UNSATURATED)


def test_fingerprint_keys_match_unsharded_result():
    legacy = run_scale(**UNSATURATED)
    sharded = run_scale_sharded(shards=2, parallel=1, **UNSATURATED)
    assert set(sharded.fingerprint()) == set(legacy.fingerprint())


def test_table_renders():
    result = run_scale_sharded(shards=2, parallel=1, **UNSATURATED)
    text = result.table().render()
    assert "2 shard" in text
    assert "events/sec (merged)" in text
