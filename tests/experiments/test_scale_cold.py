"""Cold-start engine bit-identity and plumbing at the experiment layer.

The acceptance contract: under ``pool_policy`` in {cold, hybrid} the
cold-lane wheel engine, the lane-off batch kernel and the per-event
heap referee must produce bit-identical fingerprints -- across arrival
shapes, keepalive on and off (strict vs commuting kernels), dense-gap
saturation, and K-shard decompositions.  Plus the knob validation
boundary, the coldstart harness, and the bench guard's cold checks.
"""

import json

import pytest

from repro.experiments.bench import check_regression
from repro.experiments.coldstart import QUICK_KWARGS, executor_seconds, run_coldstart
from repro.experiments.scale import run_scale, run_scale_sharded
from repro.sim.clock import ms, us

#: Small saturating scenario: the pool runs dry within the burst, so
#: nearly every arrival takes the cold path.
COLD = {
    "invocations": 6_000,
    "workers": 64,
    "mean_arrival_gap_ns": us(25),
    "pool_policy": "cold",
    "start_model": "remote-fork",
    "keepalive_ns": 0,
}


def _fp(**kwargs):
    return run_scale(**kwargs).fingerprint()


def _three_way(**kwargs):
    heap = _fp(scheduler="heap", admission="per-event", **kwargs)
    off = _fp(scheduler="wheel", admission="batch", lease_lane="off", **kwargs)
    on = _fp(scheduler="wheel", admission="batch", lease_lane="on", **kwargs)
    assert heap == off
    assert off == on
    return heap


@pytest.mark.parametrize("shape", ["poisson", "bursty", "diurnal"])
@pytest.mark.parametrize("policy", ["cold", "hybrid"])
def test_cold_identity_across_shapes_and_policies(shape, policy):
    fp = _three_way(**{**COLD, "pool_policy": policy, "arrival_shape": shape})
    assert fp["cold_starts"] > 0


def test_cold_identity_dense_gap_saturated():
    # Arrivals every ~40 ns against a 1 ms spawn: thousands of pending
    # spin-ups per slab, chunk admissions landing mid-backlog -- the
    # config that catches eid-tie divergence.
    fp = _three_way(
        invocations=20_000, workers=256, mean_arrival_gap_ns=40,
        pool_policy="cold", start_model="remote-fork", keepalive_ns=0,
    )
    assert fp["cold_starts"] > 15_000


@pytest.mark.parametrize("policy", ["cold", "hybrid"])
def test_cold_identity_with_keepalive_strict_kernel(policy):
    # keepalive > 0 routes to the strict-interleave kernel; a breathing
    # pool exercises both reclaim outcomes (success and retain).
    fp = _three_way(
        invocations=8_000, workers=512, mean_arrival_gap_ns=us(2),
        arrival_shape="bursty", pool_policy=policy, hybrid_threshold=16,
        start_model="remote-fork", keepalive_ns=ms(1),
    )
    assert fp["cold_starts"] > 0
    assert fp["cold_reclaimed"] + fp["cold_retained"] > 0


def test_cold_identity_mixed_warm_and_cold():
    # Pool dips in and out of dryness: warm leases, backlog pops and
    # spin-ups interleave at the same nanoseconds.
    fp = _three_way(
        invocations=8_000, workers=2_048, mean_arrival_gap_ns=us(1),
        arrival_shape="diurnal", pool_policy="hybrid", hybrid_threshold=16,
        start_model="bare-metal", keepalive_ns=0,
    )
    assert 0 < fp["cold_starts"] < fp["completed"]


def test_queue_policy_unchanged_by_cold_machinery():
    base = dict(COLD)
    base.pop("pool_policy")
    base.pop("start_model")
    base.pop("keepalive_ns")
    legacy = _fp(scheduler="wheel", admission="batch", lease_lane="on", **base)
    queued = _fp(
        scheduler="wheel", admission="batch", lease_lane="on",
        pool_policy="queue", **base,
    )
    assert legacy == queued
    assert queued["cold_starts"] == 0


def test_cold_gauges_populate():
    result = run_scale(
        scheduler="wheel", admission="batch", lease_lane="on", **COLD
    )
    occ = result.occupancy
    assert occ["cold_entries_peak"] > 0
    assert occ["cold_spinups"] == result.cold_starts
    assert occ["cold_slabs"] >= 1


def test_shard_decomposition_invariance_with_cold_lane():
    # Exactness regime for the mod-K partition (see the scale module
    # docstring): arrivals interact only through warm-pool slots, so
    # pick services that outlast the arrival span -- no slot refills,
    # the warm set is exactly the first W arrivals under any K, and
    # the cold set (hence cold_busy_ns) is decomposition-invariant.
    kwargs = dict(
        invocations=4_000, workers=256, mean_arrival_gap_ns=us(25),
        service_log_mean=23.0, service_log_sigma=0.3,
        pool_policy="cold", start_model="remote-fork", keepalive_ns=0,
    )
    one = run_scale_sharded(shards=1, parallel=1, **kwargs).fingerprint()
    two = run_scale_sharded(shards=2, parallel=1, **kwargs).fingerprint()
    assert one == two
    assert one["cold_starts"] == 4_000 - 256


@pytest.mark.parametrize(
    "bad",
    [
        {"pool_policy": "tepid"},
        {"start_model": "podman"},
        {"keepalive_ns": -1},
        {"pool_policy": "hybrid", "hybrid_threshold": 0},
    ],
)
def test_cold_knob_validation(bad):
    with pytest.raises(ValueError):
        run_scale(**{**COLD, "invocations": 10, **bad})


def test_run_coldstart_quick_spectrum():
    result = run_coldstart(**QUICK_KWARGS)
    assert len(result.points) == 4  # 2 pools x 2 start models x 1 shape
    assert all(p.bit_identical for p in result.points)
    # The small pool saturates; remote-fork must beat docker's tail.
    by_key = {(p.pool_size, p.start_model): p for p in result.points}
    small_fork = by_key[(64, "remote-fork")]
    small_docker = by_key[(64, "docker")]
    assert small_fork.cold_fraction > 0.5
    assert small_fork.p99_ns < small_docker.p99_ns
    assert small_fork.executor_seconds < small_docker.executor_seconds
    rendered = result.table().render()
    assert rendered.count("\n") >= 5


def test_run_coldstart_profile_refused():
    with pytest.raises(ValueError, match="--pool-policy cold --profile"):
        run_coldstart(profile=True)


def test_executor_seconds_accounting():
    # 10 workers for 1 s + 2 s of cold busy + 3 reclaimed x 0.5 s idle.
    assert executor_seconds(10, 1_000_000_000, 2_000_000_000, 3, 500_000_000) == (
        pytest.approx(10.0 + 2.0 + 1.5)
    )


# -- bench guard: the cold-start regression checks --------------------


_RATE = {"kernel_event_throughput": {"events_per_sec": 1_000_000}}


def _doc(tmp_path, entry):
    path = tmp_path / "BENCH.json"
    entry = {**_RATE, **entry}
    path.write_text(
        json.dumps({"schema": "rfaas-repro-bench-v1", "entries": {"base": entry}})
    )
    return str(path)


def test_guard_flags_cold_fraction_blowup(tmp_path):
    baseline = _doc(tmp_path, {"coldstart": {"cold_fraction": 0.10}})
    ok = {**_RATE, "coldstart": {"cold_fraction": 0.35, "bit_identical": True}}
    assert check_regression(ok, baseline, "base") == []
    bad = {**_RATE, "coldstart": {"cold_fraction": 0.41, "bit_identical": True}}
    problems = check_regression(bad, baseline, "base")
    assert any("cold_fraction" in p for p in problems)


def test_guard_skips_cold_fraction_without_baseline_key(tmp_path):
    baseline = _doc(tmp_path, {"other": {}})
    results = {**_RATE, "coldstart": {"cold_fraction": 0.99, "bit_identical": True}}
    assert check_regression(results, baseline, "base") == []


def test_guard_flags_fingerprint_divergence(tmp_path):
    baseline = _doc(tmp_path, {"coldstart": {"cold_fraction": 0.10}})
    results = {**_RATE, "coldstart": {"cold_fraction": 0.10, "bit_identical": False}}
    problems = check_regression(results, baseline, "base")
    assert any("diverged" in p for p in problems)


def test_guard_flags_reclaim_divergence(tmp_path):
    baseline = _doc(tmp_path, {"coldstart": {"cold_fraction": 0.10}})
    results = {
        **_RATE,
        "coldstart": {
            "cold_fraction": 0.10,
            "bit_identical": True,
            "reclaim": {"bit_identical": False},
        }
    }
    problems = check_regression(results, baseline, "base")
    assert any("reclaim" in p for p in problems)
