"""Bench additions: cold/warm cache batch and the perf-regression guard."""

import json

from repro.experiments.bench import bench_cache_batch, check_regression


def test_cache_batch_cold_warm_bit_identical():
    record = bench_cache_batch(experiments=("table1", "billing"))
    assert record["bit_identical"]
    assert record["misses"] == 2  # cold pass ran everything
    assert record["hits"] == 2  # warm pass ran nothing
    assert record["warm_s"] < record["cold_s"]
    assert record["speedup"] > 1.0


def test_cache_batch_uses_given_dir_and_keeps_it(tmp_path):
    root = tmp_path / "bench-cache"
    bench_cache_batch(cache_dir=str(root), experiments=("table1",))
    assert (root / "index.json").exists()  # caller-owned dirs survive


def _baseline_doc(tmp_path, rate):
    path = tmp_path / "BENCH.json"
    path.write_text(
        json.dumps(
            {
                "schema": "rfaas-repro-bench-v1",
                "entries": {"base": {"kernel_event_throughput": {"events_per_sec": rate}}},
            }
        )
    )
    return str(path)


def _results(rate):
    return {"kernel_event_throughput": {"events_per_sec": rate}}


def test_check_regression_passes_within_budget(tmp_path):
    baseline = _baseline_doc(tmp_path, 1_000_000)
    assert check_regression(_results(900_000), baseline, "base") == []
    assert check_regression(_results(701_000), baseline, "base") == []
    # Faster than baseline is trivially fine.
    assert check_regression(_results(2_000_000), baseline, "base") == []


def test_check_regression_fails_beyond_budget(tmp_path):
    baseline = _baseline_doc(tmp_path, 1_000_000)
    problems = check_regression(_results(500_000), baseline, "base")
    assert len(problems) == 1 and "below baseline" in problems[0]
    # Tighter budget flips a previously passing rate.
    assert check_regression(_results(900_000), baseline, "base", max_regression=0.05)


def test_check_regression_reports_missing_baseline(tmp_path):
    assert check_regression(_results(1), str(tmp_path / "nope.json"), "base")
    baseline = _baseline_doc(tmp_path, 1_000_000)
    assert check_regression(_results(1_000_000), baseline, "absent-label")


def test_check_regression_defaults_to_last_label(tmp_path):
    baseline = _baseline_doc(tmp_path, 1_000_000)
    assert check_regression(_results(999_999), baseline, None) == []
