"""Bench additions: cold/warm cache batch and the perf-regression guard."""

import json

from repro.experiments.bench import bench_cache_batch, check_regression


def test_cache_batch_cold_warm_bit_identical():
    record = bench_cache_batch(experiments=("table1", "billing"))
    assert record["bit_identical"]
    assert record["misses"] == 2  # cold pass ran everything
    assert record["hits"] == 2  # warm pass ran nothing
    assert record["warm_s"] < record["cold_s"]
    assert record["speedup"] > 1.0


def test_cache_batch_uses_given_dir_and_keeps_it(tmp_path):
    root = tmp_path / "bench-cache"
    bench_cache_batch(cache_dir=str(root), experiments=("table1",))
    assert (root / "index.json").exists()  # caller-owned dirs survive


def _baseline_doc(tmp_path, rate):
    path = tmp_path / "BENCH.json"
    path.write_text(
        json.dumps(
            {
                "schema": "rfaas-repro-bench-v1",
                "entries": {"base": {"kernel_event_throughput": {"events_per_sec": rate}}},
            }
        )
    )
    return str(path)


def _results(rate):
    return {"kernel_event_throughput": {"events_per_sec": rate}}


def test_check_regression_passes_within_budget(tmp_path):
    baseline = _baseline_doc(tmp_path, 1_000_000)
    assert check_regression(_results(900_000), baseline, "base") == []
    assert check_regression(_results(701_000), baseline, "base") == []
    # Faster than baseline is trivially fine.
    assert check_regression(_results(2_000_000), baseline, "base") == []


def test_check_regression_fails_beyond_budget(tmp_path):
    baseline = _baseline_doc(tmp_path, 1_000_000)
    problems = check_regression(_results(500_000), baseline, "base")
    assert len(problems) == 1 and "below baseline" in problems[0]
    # Tighter budget flips a previously passing rate.
    assert check_regression(_results(900_000), baseline, "base", max_regression=0.05)


def test_check_regression_reports_missing_baseline(tmp_path):
    assert check_regression(_results(1), str(tmp_path / "nope.json"), "base")
    baseline = _baseline_doc(tmp_path, 1_000_000)
    assert check_regression(_results(1_000_000), baseline, "absent-label")


def test_check_regression_defaults_to_last_label(tmp_path):
    baseline = _baseline_doc(tmp_path, 1_000_000)
    assert check_regression(_results(999_999), baseline, None) == []


def _sharded_entry(rate, shards=2, workers=2, representative=True):
    return {
        "kernel_event_throughput": {"events_per_sec": 1_000_000},
        "scale_sharded": {
            "shards": shards,
            "workers": workers,
            "events_per_sec": rate,
            "speedup_representative": representative,
        },
    }


def _sharded_baseline(tmp_path, rate, **kwargs):
    path = tmp_path / "BENCH_SHARDED.json"
    path.write_text(
        json.dumps(
            {
                "schema": "rfaas-repro-bench-v1",
                "entries": {"base": _sharded_entry(rate, **kwargs)},
            }
        )
    )
    return str(path)


_sharded_results = _sharded_entry


def test_sharded_guard_compares_matching_shard_counts(tmp_path):
    baseline = _sharded_baseline(tmp_path, 1_000_000)
    assert check_regression(_sharded_results(900_000), baseline, "base") == []
    problems = check_regression(_sharded_results(500_000), baseline, "base")
    assert len(problems) == 1
    assert "scale_sharded" in problems[0] and "2 shards" in problems[0]


def test_sharded_guard_skips_mismatched_decompositions(tmp_path):
    """2-shard and 4-shard runs simulate different per-env workloads."""
    baseline = _sharded_baseline(tmp_path, 1_000_000, shards=2)
    assert check_regression(_sharded_results(100_000, shards=4), baseline, "base") == []
    # Same shard count but different worker count: also incomparable.
    assert (
        check_regression(_sharded_results(100_000, workers=8), baseline, "base") == []
    )
    # A baseline recorded before sharding existed guards nothing sharded.
    old = _baseline_doc(tmp_path, 1_000_000)
    assert check_regression(_sharded_results(100_000), old, "base") == []


def test_sharded_guard_skips_non_representative_entries(tmp_path):
    """Single-CPU fan-out rates are dispatch noise: recorded, not guarded."""
    flagged = _sharded_baseline(tmp_path, 1_000_000, representative=False)
    assert check_regression(_sharded_results(100_000), flagged, "base") == []
    good = _sharded_baseline(tmp_path, 1_000_000)
    assert (
        check_regression(_sharded_results(100_000, representative=False), good, "base")
        == []
    )
