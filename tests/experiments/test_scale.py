"""Open-loop scale harness: determinism, queueing, bounded memory."""

import pytest

from repro.experiments.bench import check_regression
from repro.experiments.scale import QUICK_KWARGS, run_scale


@pytest.fixture(scope="module")
def quick_runs():
    """One CI-sized run per scheduler (shared: the runs are the cost)."""
    return {
        scheduler: run_scale(scheduler=scheduler, **QUICK_KWARGS)
        for scheduler in ("heap", "wheel")
    }


def test_fingerprints_identical_across_schedulers(quick_runs):
    """The tentpole invariant: same simulated outputs, bit for bit."""
    assert quick_runs["heap"].fingerprint() == quick_runs["wheel"].fingerprint()


def test_all_invocations_complete(quick_runs):
    for result in quick_runs.values():
        assert result.completed == result.invocations == QUICK_KWARGS["invocations"]
        assert result.final_now_ns > 0
        assert result.events_per_sec > 0


def test_quick_config_exercises_backlog(quick_runs):
    """The CI sizing must saturate the pool so the FIFO path is covered."""
    result = quick_runs["heap"]
    assert result.queued > 0
    assert result.max_backlog > 0
    assert result.queued <= result.invocations


def test_streaming_memory_is_bounded(quick_runs):
    for result in quick_runs.values():
        # Latencies span ~10 octaves; buckets must be nowhere near n.
        assert result.stream_buckets < 5_000
        assert result.latency.count == result.invocations
        assert 0 < result.latency.median <= result.latency.p95 <= result.latency.p99
        assert result.peak_rss_bytes > 0


def test_events_dominated_by_lease_renewals(quick_runs):
    """Every invocation costs one arrival, >=1 lease event; long services
    re-arm periodically, so events exceed 2x invocations."""
    result = quick_runs["heap"]
    assert result.events_processed > 2 * result.invocations


def test_per_event_engine_exercises_timeout_pool():
    """The per-event driver allocates one Timeout per arrival and lease
    timer and must recycle them; the batch engine deliberately bypasses
    Timeout allocation entirely (shared-callback BatchEvents), so the
    pool assertion only applies to per-event admission."""
    result = run_scale(scheduler="heap", admission="per-event", **QUICK_KWARGS)
    assert result.timeout_pool_hits > 0
    batch = run_scale(scheduler="heap", admission="batch", **QUICK_KWARGS)
    assert batch.timeout_pool_hits == 0
    assert batch.fingerprint() == result.fingerprint()


def test_table_renders(quick_runs):
    text = quick_runs["wheel"].table().render()
    assert "invocations" in text
    assert "events/sec" in text


def test_rejects_empty_run():
    with pytest.raises(ValueError):
        run_scale(invocations=0, workers=4)


def test_rss_regression_guard(tmp_path):
    """check_regression flags >20% RSS growth on the scale entry and
    tolerates baselines recorded before RSS tracking existed."""
    baseline = {
        "kernel_event_throughput": {"events_per_sec": 1_000_000},
        "scale_openloop": {"peak_rss_bytes": 100 * 2**20},
    }
    path = tmp_path / "bench.json"
    path.write_text(
        '{"schema": "rfaas-repro-bench-v1", "entries": {"base": '
        + __import__("json").dumps(baseline)
        + "}}"
    )
    current_ok = {
        "kernel_event_throughput": {"events_per_sec": 1_000_000},
        "scale_openloop": {"peak_rss_bytes": int(110 * 2**20)},
    }
    assert check_regression(current_ok, str(path), "base") == []
    current_bad = {
        "kernel_event_throughput": {"events_per_sec": 1_000_000},
        "scale_openloop": {"peak_rss_bytes": int(130 * 2**20)},
    }
    problems = check_regression(current_bad, str(path), "base")
    assert len(problems) == 1
    assert "peak_rss_bytes" in problems[0]
    # Baseline without the scale entry: throughput still guarded, no
    # spurious RSS failure.
    path.write_text(
        '{"schema": "rfaas-repro-bench-v1", "entries": {"base": '
        '{"kernel_event_throughput": {"events_per_sec": 1000000}}}}'
    )
    assert check_regression(current_bad, str(path), "base") == []
