"""Streaming statistics: error bounds, merges, and edge cases.

The central claim under test: :class:`LogHistogram` quantiles carry a
deterministic relative error of at most ``2**-subbits`` versus the
exact sorted-sample quantile, while memory stays proportional to the
number of occupied buckets (not samples).
"""

import math
import random
import statistics

import pytest

from repro.analysis.stats import percentile, summarize
from repro.analysis.streams import (
    KeyedStreamingSummary,
    LogHistogram,
    P2Quantile,
    StreamingSummary,
    Welford,
)


# -- Welford -----------------------------------------------------------


def test_welford_matches_statistics_module():
    rng = random.Random(1)
    values = [rng.lognormvariate(10, 1.5) for _ in range(5_000)]
    w = Welford()
    for value in values:
        w.add(value)
    assert w.count == len(values)
    assert w.mean == pytest.approx(statistics.fmean(values), rel=1e-12)
    assert w.sample_variance == pytest.approx(statistics.variance(values), rel=1e-9)
    assert w.std == pytest.approx(statistics.pstdev(values), rel=1e-9)


def test_welford_merge_equals_serial():
    rng = random.Random(2)
    left = [rng.gauss(50, 9) for _ in range(777)]
    right = [rng.gauss(-3, 2) for _ in range(1_234)]
    serial = Welford()
    for value in left + right:
        serial.add(value)
    a, b = Welford(), Welford()
    for value in left:
        a.add(value)
    for value in right:
        b.add(value)
    a.merge(b)
    assert a.count == serial.count
    assert a.mean == pytest.approx(serial.mean, rel=1e-12)
    assert a.variance == pytest.approx(serial.variance, rel=1e-9)


def test_welford_empty_and_single():
    w = Welford()
    assert w.variance == 0.0
    w.add(42.0)
    assert w.mean == 42.0
    assert w.variance == 0.0  # undefined -> 0 by contract
    w.merge(Welford())  # merging an empty shard is a no-op
    assert w.count == 1


# -- P2Quantile --------------------------------------------------------


def test_p2_exact_below_five_samples():
    p2 = P2Quantile(0.5)
    with pytest.raises(ValueError):
        _ = p2.value
    p2.add(3.0)
    assert p2.value == 3.0
    p2.add(1.0)
    p2.add(2.0)
    assert p2.value == 2.0  # nearest-rank on the sorted buffer


def test_p2_converges_on_lognormal():
    rng = random.Random(3)
    values = [rng.lognormvariate(12, 0.8) for _ in range(20_000)]
    p2 = P2Quantile(0.95)
    for value in values:
        p2.add(value)
    exact = percentile(values, 95)
    assert p2.value == pytest.approx(exact, rel=0.05)


def test_p2_rejects_degenerate_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


# -- LogHistogram ------------------------------------------------------


@pytest.mark.parametrize("subbits", [4, 8])
def test_histogram_quantile_error_bound(subbits):
    """Every reported quantile r satisfies r <= exact < r*(1+2**-subbits)."""
    rng = random.Random(4)
    values = [rng.lognormvariate(14, 2.0) for _ in range(30_000)]
    hist = LogHistogram(subbits)
    hist.add_many(values)
    bound = 2.0**-subbits
    ordered = sorted(values)
    for q in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999):
        rank = max(1, min(len(ordered), round(q * (len(ordered) - 1)) + 1))
        exact = ordered[rank - 1]
        reported = hist.quantile(q)
        assert reported <= exact, f"q={q}: bucket edge must not overestimate"
        assert exact < reported * (1 + bound) * (1 + 1e-12), f"q={q}"


def test_histogram_scalar_and_vector_paths_identical():
    rng = random.Random(5)
    values = [rng.lognormvariate(8, 3.0) for _ in range(2_000)] + [0.0] * 17
    scalar, vector = LogHistogram(), LogHistogram()
    for value in values:
        scalar.add(value)
    vector.add_many(values)
    assert scalar._buckets == vector._buckets
    assert scalar.zero_count == vector.zero_count == 17
    assert scalar.count == vector.count == len(values)


def test_histogram_merge_equals_serial():
    rng = random.Random(6)
    left = [rng.expovariate(1e-6) for _ in range(800)]
    right = [rng.expovariate(1e-3) for _ in range(900)]
    serial = LogHistogram()
    serial.add_many(left + right)
    a, b = LogHistogram(), LogHistogram()
    a.add_many(left)
    b.add_many(right)
    a.merge(b)
    assert a._buckets == serial._buckets
    assert a.count == serial.count
    with pytest.raises(ValueError):
        a.merge(LogHistogram(4))


def test_histogram_memory_is_bounded():
    """10^5 samples across 30 octaves stay within subbits*octaves buckets."""
    rng = random.Random(7)
    hist = LogHistogram(8)
    hist.add_many([rng.uniform(1, 2**30) for _ in range(100_000)])
    octaves = 31
    assert len(hist) <= octaves * 256
    assert hist.count == 100_000


def test_histogram_zero_and_negative():
    hist = LogHistogram()
    hist.add(0.0)
    assert hist.quantile(0.5) == 0.0
    assert len(hist) == 1
    with pytest.raises(ValueError):
        hist.add(-1.0)
    with pytest.raises(ValueError):
        hist.add_many([1.0, -2.0])
    with pytest.raises(ValueError):
        LogHistogram(0)


def test_histogram_rank_edges():
    hist = LogHistogram()
    hist.add_many([1.0, 2.0, 4.0])
    assert hist.value_at_rank(1) == 1.0
    assert hist.value_at_rank(3) == 4.0
    with pytest.raises(ValueError):
        hist.value_at_rank(0)
    with pytest.raises(ValueError):
        hist.value_at_rank(4)
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        LogHistogram().quantile(0.5)


def test_histogram_exact_powers_of_two_report_themselves():
    hist = LogHistogram()
    hist.add_many([2.0**k for k in range(-10, 40)])
    for k in range(-10, 40):
        rank = k + 11
        assert hist.value_at_rank(rank) == 2.0**k


# -- StreamingSummary --------------------------------------------------


def test_streaming_summary_tracks_exact_path():
    """Streaming summarize() vs stats.summarize on the same sample."""
    rng = random.Random(8)
    values = [rng.lognormvariate(13, 1.0) for _ in range(50_000)]
    stream = StreamingSummary()
    stream.observe_many(values)
    exact = summarize(values)
    approx = stream.summarize()
    bound = 2.0**-8
    assert approx.count == exact.count
    assert approx.mean == pytest.approx(exact.mean, rel=1e-9)
    assert approx.minimum == exact.minimum
    assert approx.maximum == exact.maximum
    for name in ("median", "p95", "p99", "ci_low", "ci_high"):
        a, e = getattr(approx, name), getattr(exact, name)
        assert abs(a - e) / e <= bound * 1.01, name


def test_streaming_summary_scalar_vector_merge_agree():
    rng = random.Random(9)
    values = [rng.expovariate(1e-4) for _ in range(3_000)]
    scalar = StreamingSummary()
    for value in values:
        scalar.observe(value)
    vector = StreamingSummary()
    vector.observe_many(values)
    sharded = StreamingSummary()
    shard = StreamingSummary()
    sharded.observe_many(values[: len(values) // 2])
    shard.observe_many(values[len(values) // 2 :])
    sharded.merge(shard)
    for other in (vector, sharded):
        assert other.count == scalar.count
        assert other.histogram._buckets == scalar.histogram._buckets
        assert other.minimum == scalar.minimum
        assert other.maximum == scalar.maximum
        assert other.welford.mean == pytest.approx(scalar.welford.mean, rel=1e-12)


def _split(values, ways):
    """Contiguous split into *ways* shards (uneven tails included)."""
    size = -(-len(values) // ways)
    return [values[i : i + size] for i in range(0, len(values), size)]


@pytest.mark.parametrize("ways", [1, 2, 4, 8])
def test_merged_fold_invariant_across_split_arity(ways):
    """K-way shard folds agree with the serial stream for K in 1..8.

    Histogram buckets, counts, and min/max are integer-exact whatever
    the grouping; the Welford moments (Chan's formulas) reassociate
    only within float rounding, so mean/variance compare approximately.
    """
    rng = random.Random(20)
    values = [rng.lognormvariate(13, 1.2) for _ in range(4_000)]
    serial = StreamingSummary()
    serial.observe_many(values)
    parts = []
    for shard in _split(values, ways):
        part = StreamingSummary()
        part.observe_many(shard)
        parts.append(part)
    merged = StreamingSummary.merged(parts)
    assert merged.count == serial.count
    assert merged.histogram._buckets == serial.histogram._buckets
    assert merged.minimum == serial.minimum
    assert merged.maximum == serial.maximum
    assert merged.welford.mean == pytest.approx(serial.welford.mean, rel=1e-12)
    assert merged.welford.variance == pytest.approx(serial.welford.variance, rel=1e-9)
    a, b = merged.summarize(), serial.summarize()
    assert (a.median, a.p95, a.p99, a.ci_low, a.ci_high) == (
        b.median,
        b.p95,
        b.p99,
        b.ci_low,
        b.ci_high,
    )


def test_merged_fold_commutes_and_associates():
    """Any order/grouping of shard merges yields the same histogram state.

    This is what lets the sharded scale engine fold shard results in
    shard order and still claim worker-count independence: dispatch
    order never reaches the fold.
    """
    rng = random.Random(21)
    shards = []
    for _ in range(4):
        part = StreamingSummary()
        part.observe_many([rng.expovariate(1e-5) for _ in range(500)])
        shards.append(part)
    forward = StreamingSummary.merged(shards)
    backward = StreamingSummary.merged(list(reversed(shards)))
    paired_left = StreamingSummary.merged([shards[0], shards[1]])
    paired_right = StreamingSummary.merged([shards[2], shards[3]])
    nested = StreamingSummary.merged([paired_left, paired_right])
    for other in (backward, nested):
        assert other.count == forward.count
        assert other.histogram._buckets == forward.histogram._buckets
        assert other.minimum == forward.minimum
        assert other.maximum == forward.maximum
        assert other.welford.mean == pytest.approx(forward.welford.mean, rel=1e-12)


def test_merged_requires_at_least_one_part():
    with pytest.raises(ValueError):
        StreamingSummary.merged([])


def test_streaming_summary_empty_cases():
    stream = StreamingSummary()
    with pytest.raises(ValueError):
        stream.summarize()
    stream.observe_many([])  # no-op
    stream.merge(StreamingSummary())  # merging empty is a no-op
    assert stream.count == 0
    stream.observe(5.0)
    summary = stream.summarize()
    assert summary.count == 1
    assert summary.minimum == summary.maximum == 5.0
    assert not math.isnan(summary.median)


# -- KeyedStreamingSummary ---------------------------------------------


def _keyed_samples():
    """Three tenants with very uneven sample counts (2400 / 320 / 11)."""
    rng = random.Random(22)
    samples = []
    for key, count, mu in (("hot", 2_400, 10.0), ("bursty", 320, 12.0), ("batch", 11, 14.0)):
        samples.extend((key, rng.lognormvariate(mu, 1.1)) for _ in range(count))
    rng.shuffle(samples)
    return samples


def _keyed_part(samples):
    part = KeyedStreamingSummary()
    for key, value in samples:
        part.observe(key, value)
    return part


@pytest.mark.parametrize("ways", [1, 2, 4, 8])
def test_keyed_merged_invariant_across_split_arity(ways):
    """Per-key accumulators fold exactly for K in 1..8, tenants unevenly
    spread across the shards (contiguous splits of a shuffled stream, so
    the 11-sample tenant can be entirely absent from most shards)."""
    samples = _keyed_samples()
    serial = _keyed_part(samples)
    merged = KeyedStreamingSummary.merged(
        [_keyed_part(shard) for shard in _split(samples, ways)]
    )
    assert set(merged.parts) == set(serial.parts)
    assert merged.total_count() == serial.total_count()
    assert merged.buckets() == serial.buckets()
    for key in serial.parts:
        assert merged.count(key) == serial.count(key)
        a, b = merged.summarize(key), serial.summarize(key)
        assert (a.median, a.p95, a.p99, a.minimum, a.maximum) == (
            b.median,
            b.p95,
            b.p99,
            b.minimum,
            b.maximum,
        )
        assert a.mean == pytest.approx(b.mean, rel=1e-12)


def test_keyed_merged_commutes_and_associates():
    """Shard order and grouping never reach the per-key histograms."""
    samples = _keyed_samples()
    shards = [_keyed_part(shard) for shard in _split(samples, 4)]
    forward = KeyedStreamingSummary.merged(shards)
    backward = KeyedStreamingSummary.merged(list(reversed(shards)))
    nested = KeyedStreamingSummary.merged(
        [
            KeyedStreamingSummary.merged([shards[0], shards[1]]),
            KeyedStreamingSummary.merged([shards[2], shards[3]]),
        ]
    )
    for other in (backward, nested):
        assert set(other.parts) == set(forward.parts)
        for key in forward.parts:
            assert other.count(key) == forward.count(key)
            assert (
                other.parts[key].histogram._buckets
                == forward.parts[key].histogram._buckets
            )
            assert other.parts[key].minimum == forward.parts[key].minimum
            assert other.parts[key].maximum == forward.parts[key].maximum
            assert other.parts[key].welford.mean == pytest.approx(
                forward.parts[key].welford.mean, rel=1e-12
            )


def test_keyed_merge_never_aliases_shard_state():
    """Folding a shard in must deep-copy unseen keys, not alias them."""
    shard = KeyedStreamingSummary()
    shard.observe("only-here", 7.0)
    out = KeyedStreamingSummary.merged([shard])
    out.observe("only-here", 9.0)
    assert shard.count("only-here") == 1
    assert out.count("only-here") == 2


def test_keyed_merge_validates_and_raises_on_unknown_key():
    left = KeyedStreamingSummary(subbits=8)
    with pytest.raises(ValueError):
        left.merge(KeyedStreamingSummary(subbits=4))
    with pytest.raises(KeyError):
        left.summarize("never-observed")
    assert left.count("never-observed") == 0
