"""Text plotting helpers."""

import pytest

from repro.analysis.plotting import bar_chart, cdf_points, sparkline


def test_sparkline_shape_and_extremes():
    line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
    assert len(line) == 8
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([5, 5, 5]) == "▁▁▁"
    assert sparkline([]) == ""


def test_sparkline_log_compresses_magnitudes():
    linear = sparkline([1, 10, 100, 100_000])
    log = sparkline([1, 10, 100, 100_000], log=True)
    # Linear scale flattens the small values; log spreads them.
    assert linear[0] == linear[1] == "▁"
    assert log[0] != log[1]


def test_bar_chart_rows_and_scaling():
    chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
    lines = chart.split("\n")
    assert len(lines) == 2
    assert lines[1].count("█") > lines[0].count("█")
    assert "2" in lines[1]


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    assert bar_chart([], []) == ""


def test_cdf_points_monotone():
    values = [5, 1, 3, 2, 4]
    points = cdf_points(values, points=5)
    assert points[0] == (0.0, 1.0)
    assert points[-1] == (1.0, 5.0)
    quantiles = [q for q, _ in points]
    samples = [v for _, v in points]
    assert quantiles == sorted(quantiles)
    assert samples == sorted(samples)


def test_cdf_points_empty_rejected():
    with pytest.raises(ValueError):
        cdf_points([])
