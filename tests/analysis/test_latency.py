"""FIFO replay post-pass (repro.analysis.latency) vs a naive loop."""

import numpy as np
import pytest

from repro.analysis.latency import replay_fifo, sojourn_by_kind


def naive_fifo(times, kinds, keys, service_ns):
    rows = sorted(zip(times, kinds, keys))
    done, free_at = [], 0
    for t, kind, _key in rows:
        start = max(t, free_at)
        free_at = start + service_ns[kind]
        done.append(free_at)
    return rows, done


def random_log(rng, n=500, kind_count=4):
    times = np.sort(rng.integers(0, 10_000, size=n)).astype(np.int64)
    kinds = rng.integers(0, kind_count, size=n).astype(np.int64)
    # Unique (time, kind, key) triples via distinct keys.
    keys = rng.permutation(n).astype(np.int64)
    return times, kinds, keys


def test_matches_naive_loop():
    rng = np.random.default_rng(11)
    service = np.array([100, 5, 70, 2000], dtype=np.int64)
    times, kinds, keys = random_log(rng)
    order, done = replay_fifo(times, kinds, keys, service)
    _rows, naive_done = naive_fifo(times.tolist(), kinds.tolist(), keys.tolist(), service)
    assert done.tolist() == naive_done
    # Canonical order is (time, kind, key) lexicographic.
    triples = list(zip(times[order], kinds[order], keys[order]))
    assert triples == sorted(triples)


def test_idle_server_serves_at_arrival():
    times = np.array([0, 1_000_000], dtype=np.int64)
    kinds = np.array([0, 0], dtype=np.int64)
    keys = np.array([0, 1], dtype=np.int64)
    service = np.array([10], dtype=np.int64)
    _order, done = replay_fifo(times, kinds, keys, service)
    assert done.tolist() == [10, 1_000_010]


def test_burst_queues_behind_in_flight():
    times = np.zeros(5, dtype=np.int64)
    kinds = np.zeros(5, dtype=np.int64)
    keys = np.arange(5, dtype=np.int64)
    service = np.array([7], dtype=np.int64)
    _order, done = replay_fifo(times, kinds, keys, service)
    assert done.tolist() == [7, 14, 21, 28, 35]


def test_sojourn_by_kind_partitions_all_rows():
    rng = np.random.default_rng(5)
    service = np.array([100, 5, 70, 2000], dtype=np.int64)
    times, kinds, keys = random_log(rng, n=300)
    per_kind = sojourn_by_kind(times, kinds, keys, service, 4)
    assert sum(len(p) for p in per_kind) == 300
    for kind, part in enumerate(per_kind):
        assert len(part) == int(np.count_nonzero(kinds == kind))
        # Sojourn is at least the service time.
        if part.size:
            assert part.min() >= service[kind]


def test_empty_log():
    empty = np.empty(0, dtype=np.int64)
    order, done = replay_fifo(empty, empty, empty, np.array([1], dtype=np.int64))
    assert order.size == 0 and done.size == 0
    parts = sojourn_by_kind(empty, empty, empty, np.array([1], dtype=np.int64), 3)
    assert [p.size for p in parts] == [0, 0, 0]


def test_shape_validation():
    with pytest.raises(ValueError):
        replay_fifo(
            np.array([1, 2], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
