"""Stats correctness, cross-checked against numpy/scipy where possible."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sp_stats

from repro.analysis import Table, format_bytes, format_ns, median, median_ci, percentile, summarize
from repro.analysis.stats import _binomial_cdf


def test_median_odd_even():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == 2.5
    assert median([5]) == 5


def test_median_empty_rejected():
    with pytest.raises(ValueError):
        median([])


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_median_matches_numpy(values):
    assert median(values) == pytest.approx(float(np.median(values)), rel=1e-12, abs=1e-9)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2, max_size=100),
    st.floats(min_value=0, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_percentile_matches_numpy(values, q):
    ours = percentile(values, q)
    theirs = float(np.percentile(values, q))
    assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-6)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_binomial_cdf_matches_scipy():
    for n in (1, 5, 10, 37, 100):
        for k in (-1, 0, n // 2, n - 1, n):
            assert _binomial_cdf(k, n) == pytest.approx(sp_stats.binom.cdf(k, n, 0.5), abs=1e-12)


def test_median_ci_contains_median():
    rng = np.random.default_rng(0)
    values = rng.normal(100, 15, size=101).tolist()
    low, high = median_ci(values, 0.99)
    assert low <= median(values) <= high


def test_median_ci_tightens_with_samples():
    rng = np.random.default_rng(1)
    small = rng.normal(100, 15, size=20).tolist()
    large = rng.normal(100, 15, size=2000).tolist()
    low_s, high_s = median_ci(small, 0.99)
    low_l, high_l = median_ci(large, 0.99)
    assert (high_l - low_l) < (high_s - low_s)


def test_median_ci_coverage_simulation():
    """Empirical coverage of the 95% CI should be >= ~95%."""
    rng = np.random.default_rng(42)
    true_median = 0.0
    hits = 0
    trials = 300
    for _ in range(trials):
        sample = rng.standard_normal(51).tolist()
        low, high = median_ci(sample, 0.95)
        hits += low <= true_median <= high
    assert hits / trials >= 0.93


def test_median_ci_small_sample_falls_back_to_range():
    low, high = median_ci([1.0, 2.0], 0.99)
    assert (low, high) == (1.0, 2.0)
    assert median_ci([7.0], 0.99) == (7.0, 7.0)


def test_median_ci_validation():
    with pytest.raises(ValueError):
        median_ci([], 0.99)
    with pytest.raises(ValueError):
        median_ci([1.0], 1.5)


def test_summarize_fields():
    values = list(range(1, 101))
    stats = summarize(values, 0.95)
    assert stats.count == 100
    assert stats.median == 50.5
    assert stats.minimum == 1 and stats.maximum == 100
    assert stats.mean == pytest.approx(50.5)
    assert stats.ci_low <= stats.median <= stats.ci_high
    assert stats.p99 == pytest.approx(float(np.percentile(values, 99)))
    assert 0 < stats.ci_tightness < 1


def test_format_ns():
    assert format_ns(326) == "326 ns"
    assert format_ns(4_670) == "4.67 us"
    assert format_ns(25_000_000) == "25 ms"
    assert format_ns(2_700_000_000) == "2.7 s"


def test_format_bytes():
    assert format_bytes(100) == "100 B"
    assert format_bytes(2048) == "2 KiB"
    assert format_bytes(5 * (1 << 20)) == "5 MiB"


def test_table_render_and_validation():
    table = Table("demo", ["a", "b"])
    table.add_row(1, "x")
    text = table.render()
    assert "demo" in text and "1" in text and "x" in text
    with pytest.raises(ValueError):
        table.add_row(1)


def test_sweep_grid_and_filters():
    from repro.analysis import Sweep

    calls = []

    def fn(x, y):
        calls.append((x, y))
        return x * 10 + y

    sweep = Sweep(fn).run(x=[1, 2], y=[3, 4])
    assert calls == [(1, 3), (1, 4), (2, 3), (2, 4)]
    assert sweep.column(lambda p: p.result) == [13, 14, 23, 24]
    assert [p.result for p in sweep.where(x=2)] == [23, 24]
