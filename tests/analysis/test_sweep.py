"""Sweep grid semantics: product order, explicit indices, seeds, fan-out."""

import pytest

from repro.analysis import ParallelSweep, Sweep
from repro.parallel import FailedPoint
from repro.sim.rng import derive_seed
from tests.parallel import factories


def test_grid_is_row_major_product():
    sweep = Sweep(fn=None)
    grid = sweep.grid(x=[1, 2], y=["a", "b"], z=[9])
    assert grid == [
        {"x": 1, "y": "a", "z": 9},
        {"x": 1, "y": "b", "z": 9},
        {"x": 2, "y": "a", "z": 9},
        {"x": 2, "y": "b", "z": 9},
    ]


def test_points_carry_explicit_grid_index():
    sweep = Sweep(lambda x, y: x * 10 + y).run(x=[1, 2], y=[3, 4])
    assert [p.index for p in sweep.points] == [0, 1, 2, 3]
    assert [p.result for p in sweep.points] == [13, 14, 23, 24]
    more = sweep.run(x=[5], y=[6])
    assert [p.index for p in more.points] == [0, 1, 2, 3, 4]


def test_deep_grid_no_recursion_limit():
    """Many axes used to recurse once per axis; product iterates."""
    axes = {f"a{i}": [0, 1] for i in range(12)}
    sweep = Sweep(lambda **kw: sum(kw.values())).run(**axes)
    assert len(sweep.points) == 2**12
    assert sweep.points[0].result == 0
    assert sweep.points[-1].result == 12


def test_seed_arg_splits_root_seed_per_point():
    sweep = Sweep(factories.combine, seed_arg="seed", root_seed=99)
    sweep.run(x=[1, 2], y=[7])
    seeds = [p.result[2] for p in sweep.points]
    assert seeds[0] == derive_seed(99, "x=1&y=7")
    assert seeds[1] == derive_seed(99, "x=2&y=7")
    assert seeds[0] != seeds[1]


def test_seed_depends_on_params_not_execution_order():
    one = Sweep(factories.combine, seed_arg="seed").run(x=[1, 2], y=[7])
    two = Sweep(factories.combine, seed_arg="seed").run(x=[2, 1], y=[7])
    by_params_one = {p.params["x"]: p.result[2] for p in one.points}
    by_params_two = {p.params["x"]: p.result[2] for p in two.points}
    assert by_params_one == by_params_two


def test_parallel_sweep_matches_serial_results():
    serial = Sweep(factories.double).run(x=[3, 1, 4, 1, 5])
    fanned = ParallelSweep(factories.double, parallel=2).run(x=[3, 1, 4, 1, 5])
    assert [p.result for p in fanned.points] == [p.result for p in serial.points]
    assert [p.params for p in fanned.points] == [p.params for p in serial.points]


def test_parallel_sweep_captures_failures_and_continues():
    sweep = ParallelSweep(factories.boom_for, parallel=2).run(x=[1, 2, 3], bad=[2])
    assert [p.failed for p in sweep.points] == [False, True, False]
    assert sweep.points[0].result == 10
    assert sweep.points[2].result == 30
    (failure,) = sweep.failures()
    assert isinstance(failure.result, FailedPoint)
    assert "bad point 2" in failure.result.message


def test_parallel_sweep_with_lambda_falls_back_to_serial():
    sweep = ParallelSweep(lambda x: x + 1, parallel=4).run(x=[1, 2])
    assert [p.result for p in sweep.points] == [2, 3]


def test_where_and_column_still_work():
    sweep = Sweep(factories.double).run(x=[1, 2, 3])
    assert sweep.column(lambda p: p.result) == [2, 4, 6]
    assert [p.result for p in sweep.where(x=2)] == [4]


def test_serial_sweep_propagates_exceptions():
    with pytest.raises(ValueError):
        Sweep(factories.boom).run(x=[1])
