"""Extra SeBS workloads: cross-checked against zlib and networkx."""

import zlib

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.sebs_extra import (
    bfs_distances,
    bfs_function,
    compression_function,
    graph_bytes,
    pack_graph,
    pagerank_function,
    pagerank_scores,
    random_graph,
    sebs_extra_package,
    unpack_graph,
)


# -- compression ---------------------------------------------------------------


def test_compression_roundtrips_through_zlib():
    spec = compression_function()
    payload = (b"the quick brown fox " * 400)[:7000]
    output, size = spec.execute(payload, len(payload))
    assert zlib.decompress(output) == payload
    assert size < len(payload)  # text compresses


def test_compression_cost_linear():
    spec = compression_function()
    assert spec.cost_ns(2_000_000) == 2 * spec.cost_ns(1_000_000)


# -- graph format ----------------------------------------------------------------


def test_graph_pack_unpack_roundtrip():
    edges = random_graph(50, 200)
    payload = pack_graph(50, edges, arg=7)
    n, decoded, arg = unpack_graph(payload)
    assert n == 50 and arg == 7
    assert np.array_equal(decoded, edges)
    assert len(payload) == graph_bytes(50, 200)


def test_graph_pack_validation():
    with pytest.raises(ValueError):
        pack_graph(5, np.array([[0, 9]], dtype=np.uint32), 0)  # endpoint 9 >= n
    with pytest.raises(ValueError):
        pack_graph(5, np.zeros((3, 3), dtype=np.uint32), 0)


# -- BFS ----------------------------------------------------------------------


def nx_digraph(n, edges):
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((int(u), int(v)) for u, v in edges)
    return graph


def test_bfs_matches_networkx():
    n = 80
    edges = random_graph(n, 300, seed=9)
    ours = bfs_distances(n, edges, source=0)
    reference = nx.single_source_shortest_path_length(nx_digraph(n, edges), 0)
    for node in range(n):
        expected = reference.get(node, -1)
        assert ours[node] == expected


@given(
    n=st.integers(min_value=2, max_value=30),
    m=st.integers(min_value=0, max_value=120),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_bfs_matches_networkx_property(n, m, seed):
    edges = random_graph(n, m, seed=seed)
    ours = bfs_distances(n, edges, source=0)
    reference = nx.single_source_shortest_path_length(nx_digraph(n, edges), 0)
    assert all(ours[node] == reference.get(node, -1) for node in range(n))


def test_bfs_function_end_to_end():
    n = 40
    edges = random_graph(n, 160, seed=4)
    payload = pack_graph(n, edges, arg=3)
    spec = bfs_function()
    output, _ = spec.execute(payload, len(payload))
    distances = np.frombuffer(output, dtype=np.int32)
    assert distances[3] == 0


def test_bfs_bad_source_raises():
    payload = pack_graph(4, random_graph(4, 6), arg=99)
    with pytest.raises(ValueError):
        bfs_function().handler(payload)


# -- PageRank --------------------------------------------------------------------


def test_pagerank_matches_networkx():
    n = 60
    edges = random_graph(n, 240, seed=5)
    ours = pagerank_scores(n, edges, iterations=60)
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((int(u), int(v)) for u, v in edges)
    reference = nx.pagerank(graph, alpha=0.85, max_iter=200, tol=1e-12)
    for node in range(n):
        assert ours[node] == pytest.approx(reference[node], abs=2e-6)


def test_pagerank_is_a_distribution():
    n = 30
    scores = pagerank_scores(n, random_graph(n, 90), iterations=40)
    assert scores.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(scores > 0)


def test_pagerank_function_end_to_end():
    n = 25
    edges = random_graph(n, 80, seed=6)
    payload = pack_graph(n, edges, arg=40)
    output, size = pagerank_function().execute(payload, len(payload))
    scores = np.frombuffer(output, dtype=np.float64)
    assert len(scores) == n and size == 8 * n
    assert np.allclose(scores, pagerank_scores(n, edges, 40))


# -- deployability ----------------------------------------------------------------


def test_sebs_extra_package_deploys_and_serves():
    from repro.core import Deployment

    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = sebs_extra_package()
    n = 30
    edges = random_graph(n, 100, seed=8)
    graph_payload = pack_graph(n, edges, arg=0)
    text = b"serverless " * 300

    def driver():
        yield from invoker.allocate(package, workers=3)
        compressed = yield from invoker.invoke("compression", text, out_capacity=len(text))
        bfs_out = yield from invoker.invoke(
            "graph-bfs", graph_payload, out_capacity=4 * n
        )
        return compressed, bfs_out

    compressed, bfs_out = dep.run(driver())
    assert zlib.decompress(compressed) == text
    distances = np.frombuffer(bfs_out, dtype=np.int32)
    assert distances[0] == 0
