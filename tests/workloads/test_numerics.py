"""Numerical correctness: Black-Scholes, GEMM, Jacobi, ResNet kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sp_stats

from repro.workloads.black_scholes import (
    BYTES_PER_OPTION,
    black_scholes_price,
    bs_function,
    generate_options,
    norm_cdf,
    pack_options,
    price_options,
    unpack_options,
)
from repro.workloads.gemm import gemm_cost_ns, gemm_function, pack_matrices, unpack_result
from repro.workloads.jacobi import (
    JacobiWorkspace,
    generate_system,
    jacobi_function,
    jacobi_iteration_cost_ns,
    jacobi_sweep,
    pack_iterate,
    pack_setup,
)
from repro.workloads.resnet import TinyResNet, decode_result, resnet_function
from repro.workloads.images import generate_image


# -- Black-Scholes -------------------------------------------------------------


def test_norm_cdf_matches_scipy():
    x = np.linspace(-6, 6, 1001)
    assert np.max(np.abs(norm_cdf(x) - sp_stats.norm.cdf(x))) < 1e-7


def test_bs_put_call_parity():
    """C - P = S - K e^{-rT} for identical parameters."""
    n = 500
    options = generate_options(n)
    call = black_scholes_price(*[options[:, i] for i in range(5)], np.ones(n))
    put = black_scholes_price(*[options[:, i] for i in range(5)], np.zeros(n))
    s, k, r, t = options[:, 0], options[:, 1], options[:, 2], options[:, 4]
    parity = s - k * np.exp(-r * t)
    assert np.allclose(call - put, parity, atol=1e-7)


def test_bs_known_value():
    """Classic textbook value: S=100, K=100, r=5%, sigma=20%, T=1."""
    price = black_scholes_price(
        np.array([100.0]), np.array([100.0]), np.array([0.05]),
        np.array([0.2]), np.array([1.0]), np.array([1.0]),
    )
    assert price[0] == pytest.approx(10.4506, abs=1e-3)


def test_bs_prices_positive_and_bounded():
    options = generate_options(2000)
    prices = price_options(options)
    assert np.all(prices >= -1e-9)
    assert np.all(prices <= options[:, 0] + options[:, 1])


def test_bs_pack_unpack_roundtrip():
    options = generate_options(100)
    assert np.allclose(unpack_options(pack_options(options)), options)
    with pytest.raises(ValueError):
        unpack_options(b"x" * 47)
    with pytest.raises(ValueError):
        pack_options(np.zeros((3, 5)))


def test_bs_function_end_to_end():
    spec = bs_function()
    options = generate_options(64)
    payload = pack_options(options)
    output, size = spec.execute(payload, len(payload))
    prices = np.frombuffer(output, dtype=np.float64)
    assert np.allclose(prices, price_options(options))
    assert size == 64 * 8
    # Cost model: 150 ns per option.
    assert spec.cost_ns(len(payload)) == 64 * 150


def test_bs_paper_workload_arithmetic():
    from repro.workloads.black_scholes import PAPER_NUM_OPTIONS

    input_mb = PAPER_NUM_OPTIONS * BYTES_PER_OPTION / 1e6
    output_mb = PAPER_NUM_OPTIONS * 8 / 1e6
    assert input_mb == pytest.approx(228, rel=0.01)  # "approx. 229 MB"
    assert output_mb == pytest.approx(38, rel=0.01)  # "38 MB of output"


# -- GEMM -------------------------------------------------------------------


def test_gemm_function_matches_numpy():
    rng = np.random.default_rng(0)
    n = 24
    a, b = rng.normal(size=(n, n)), rng.normal(size=(n, n))
    spec = gemm_function()
    payload = pack_matrices(a, b, 8, 16)
    output, _ = spec.execute(payload, len(payload))
    result = unpack_result(output, n)
    assert np.allclose(result, (a @ b)[8:16])


def test_gemm_pack_validation():
    with pytest.raises(ValueError):
        pack_matrices(np.zeros((3, 4)), np.zeros((3, 4)), 0, 3)
    with pytest.raises(ValueError):
        pack_matrices(np.zeros((4, 4)), np.zeros((4, 4)), 3, 2)


def test_gemm_cost_cubic():
    assert gemm_cost_ns(512) * 7.9 < gemm_cost_ns(1024) < gemm_cost_ns(512) * 8.1
    assert gemm_cost_ns(1000, rows=500) * 2 == pytest.approx(gemm_cost_ns(1000), rel=0.01)


# -- Jacobi -------------------------------------------------------------------


def test_jacobi_converges_to_solution():
    n = 60
    a, b = generate_system(n)
    x = np.zeros(n)
    for _ in range(200):
        x = jacobi_sweep(a, b, x, 0, n)
    assert np.allclose(a @ x, b, atol=1e-8)


def test_jacobi_half_sweeps_compose():
    n = 40
    a, b = generate_system(n)
    x = np.linspace(0, 1, n)
    full = jacobi_sweep(a, b, x, 0, n)
    top = jacobi_sweep(a, b, x, 0, n // 2)
    bottom = jacobi_sweep(a, b, x, n // 2, n)
    assert np.allclose(np.concatenate([top, bottom]), full)


def test_jacobi_workspace_caches_matrix():
    n = 30
    a, b = generate_system(n)
    x = np.zeros(n)
    workspace = JacobiWorkspace()
    out = workspace.handle(pack_setup(a, b, x, 0, n))
    x = np.frombuffer(out, dtype=np.float64)
    # Subsequent iterations send only x (the warm-cache optimization).
    for _ in range(150):
        out = workspace.handle(pack_iterate(np.asarray(x), 0, n))
        x = np.frombuffer(out, dtype=np.float64)
    assert np.allclose(a @ x, b, atol=1e-8)
    assert workspace.setup_calls == 1
    assert workspace.iterate_calls == 150


def test_jacobi_workspace_errors():
    workspace = JacobiWorkspace()
    with pytest.raises(RuntimeError):
        workspace.handle(pack_iterate(np.zeros(5), 0, 5))
    n = 10
    a, b = generate_system(n)
    workspace.handle(pack_setup(a, b, np.zeros(n), 0, n))
    with pytest.raises(RuntimeError):
        workspace.handle(pack_iterate(np.zeros(n + 1), 0, n))


def test_jacobi_iteration_cost_in_paper_band():
    """Per-iteration costs must land in the 1-15 ms window."""
    from repro.sim import ms

    assert ms(1) <= jacobi_iteration_cost_ns(1200) <= ms(15)
    assert ms(1) <= jacobi_iteration_cost_ns(3500) <= ms(15)


def test_jacobi_function_stateful_cost():
    n = 20
    a, b = generate_system(n)
    spec = jacobi_function()
    payload = pack_setup(a, b, np.zeros(n), 0, n // 2)
    spec.execute(payload, len(payload))
    iterate_payload = pack_iterate(np.zeros(n), 0, n // 2)
    cost = spec.cost_ns(len(iterate_payload))
    assert cost == jacobi_iteration_cost_ns(n, rows=n // 2)


# -- TinyResNet ---------------------------------------------------------------


def test_resnet_deterministic():
    model = TinyResNet()
    image = generate_image(64, 64)
    l1, s1 = model.predict(image)
    l2, s2 = model.predict(image)
    assert (l1, s1) == (l2, s2)
    assert 0 <= l1 < 1000


def test_resnet_distinguishes_images():
    model = TinyResNet()
    logits_a = model.forward(generate_image(64, 64, seed=1).pixels)
    logits_b = model.forward(generate_image(64, 64, seed=99).pixels)
    assert not np.allclose(logits_a, logits_b)


def test_resnet_function_end_to_end():
    spec = resnet_function()
    image = generate_image(120, 90)
    output, size = spec.execute(image.encode(), image.nbytes)
    label, score = decode_result(output)
    assert size == 8
    model = TinyResNet()
    expected_label, _ = model.predict(image)
    assert label == expected_label


def test_resnet_cost_dominated_by_inference():
    spec = resnet_function()
    from repro.sim import ms

    assert spec.cost_ns(53_000) >= ms(150)
    assert spec.cost_ns(230_000) - spec.cost_ns(53_000) < ms(5)
