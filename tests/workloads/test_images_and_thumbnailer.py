"""Image format and thumbnailer correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.images import HEADER_BYTES, Image, generate_image, image_for_payload_size
from repro.workloads.thumbnailer import (
    THUMBNAIL_MAX_DIM,
    make_thumbnail,
    thumbnail_cost_ns,
    thumbnailer_function,
)


def test_encode_decode_roundtrip():
    image = generate_image(37, 23)
    decoded = Image.decode(image.encode())
    assert np.array_equal(decoded.pixels, image.pixels)


def test_decode_rejects_garbage():
    with pytest.raises(ValueError):
        Image.decode(b"abc")
    image = generate_image(10, 10)
    with pytest.raises(ValueError):
        Image.decode(image.encode()[:-5])


@given(w=st.integers(min_value=1, max_value=60), h=st.integers(min_value=1, max_value=60))
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(w, h):
    image = generate_image(w, h)
    assert np.array_equal(Image.decode(image.encode()).pixels, image.pixels)


def test_image_for_payload_size_close():
    for target in (97_000, 3_600_000, 53_000, 230_000):
        image = image_for_payload_size(target)
        assert abs(image.nbytes - target) / target < 0.05


def test_thumbnail_bounded_dimensions():
    image = generate_image(1200, 900)
    thumb = make_thumbnail(image)
    assert max(thumb.width, thumb.height) <= THUMBNAIL_MAX_DIM
    assert thumb.channels == 3


def test_thumbnail_small_image_unchanged():
    image = generate_image(100, 80)
    thumb = make_thumbnail(image)
    assert np.array_equal(thumb.pixels, image.pixels)


def test_thumbnail_preserves_mean_brightness():
    """Area averaging must keep the global mean (within rounding)."""
    image = generate_image(800, 600)
    thumb = make_thumbnail(image)
    assert float(thumb.pixels.mean()) == pytest.approx(float(image.pixels.mean()), abs=1.5)


def test_thumbnail_preserves_gradient_direction():
    image = generate_image(640, 480)
    thumb = make_thumbnail(image)
    # The generator ramps brightness left to right (modulo wrap);
    # compare the first fifth to the second fifth of columns.
    w = thumb.width
    left = float(thumb.pixels[:, : w // 5, 0].mean())
    mid = float(thumb.pixels[:, w // 5 : 2 * w // 5, 0].mean())
    assert mid > left


def test_thumbnailer_function_end_to_end():
    spec = thumbnailer_function()
    image = generate_image(500, 400)
    output, size = spec.execute(image.encode(), image.nbytes)
    thumb = Image.decode(output)
    assert size == len(output)
    assert max(thumb.width, thumb.height) <= THUMBNAIL_MAX_DIM
    assert np.array_equal(thumb.pixels, make_thumbnail(image).pixels)


def test_thumbnailer_cost_scales_with_pixels():
    small = thumbnail_cost_ns(97_000)
    large = thumbnail_cost_ns(3_600_000)
    assert large > small * 20  # ~37x more pixels


def test_thumbnailer_virtual_output_size_reasonable():
    spec = thumbnailer_function()
    output, size = spec.execute(None, 3_600_000)
    assert output is None
    assert HEADER_BYTES < size <= HEADER_BYTES + 3 * THUMBNAIL_MAX_DIM**2 * 1.1
