"""Tenant profiles, the noop package, and package instantiation."""

import numpy as np
import pytest

from repro.core.functions import CodePackage
from repro.sim import us
from repro.sim.rng import RngStreams
from repro.workloads.noop import noop_package
from repro.workloads.jacobi import jacobi_package
from repro.workloads.tenants import TenantSpec, standard_mix


def test_noop_package_shape():
    package = noop_package()
    assert package.size_bytes == 7_880
    assert package.index_of("echo") == 0
    output, size = package.by_index(0).execute(b"abc", 3)
    assert output == b"abc" and size == 3


def test_stateless_package_fresh_is_identity():
    package = noop_package()
    assert package.fresh() is package


def test_stateful_package_fresh_rebuilds():
    package = jacobi_package()
    fresh = package.fresh()
    assert fresh is not package
    assert fresh.name == package.name
    # Different workspace state: the closures are distinct.
    assert fresh.by_index(0).handler is not package.by_index(0).handler


def test_tenant_spec_package_runs():
    spec = TenantSpec(name="t", compute_ns=us(10), payload_bytes=128)
    package = spec.package()
    output, size = package.by_index(0).execute(b"x" * 128, 128)
    assert size == 8
    assert package.by_index(0).cost_ns(128) == us(10)
    # Virtual execution reports the fixed output size too.
    output, size = package.by_index(0).execute(None, 128)
    assert output is None and size == 8


def test_tenant_arrival_stream_seeded_and_positive():
    spec = TenantSpec(name="t", rate_per_s=1000.0, invocations=200)
    times1 = np.concatenate(list(spec.arrival_stream(RngStreams(5).stream("t"))))
    times2 = np.concatenate(list(spec.arrival_stream(RngStreams(5).stream("t"))))
    assert np.array_equal(times1, times2)
    assert times1.size == 200
    assert times1[0] >= 1
    assert bool((np.diff(times1) >= 0).all())
    # Mean per-invocation gap roughly 1/rate (1 ms at 1000/s).
    mean_gap = times1[-1] / times1.size
    assert 0.2e6 < mean_gap < 5e6


def test_tenant_arrival_stream_matches_arrivals_module():
    # TenantSpec is declarative only: its stream must be byte-identical
    # to calling sim.arrivals.arrival_times with the documented mapping.
    from repro.sim.arrivals import arrival_times

    spec = TenantSpec(
        name="b", arrival="bursty", rate_per_s=50.0, burst_len=8, invocations=96
    )
    got = np.concatenate(list(spec.arrival_stream(RngStreams(7).stream("b"))))
    want = np.concatenate(
        list(
            arrival_times(
                "bursty",
                RngStreams(7).stream("b"),
                96,
                1e9 / (50.0 * 8),  # epoch rate semantics: gap divides by burst_len
                burst_len=8,
                burst_intra_gap_ns=1,
            )
        )
    )
    assert np.array_equal(got, want)


def test_tenant_bursty_stream_has_burst_shape():
    spec = TenantSpec(
        name="b", arrival="bursty", rate_per_s=20.0, burst_len=8, invocations=80
    )
    times = np.concatenate(list(spec.arrival_stream(RngStreams(3).stream("b"))))
    gaps = np.diff(times)
    # Within a burst arrivals sit 1 ns apart; between epochs the gap is
    # exponential with mean 1e9/20 = 50 ms.  7 of every 8 gaps are intra.
    assert int((gaps <= 8) .sum()) >= 60
    assert int(gaps.max()) > 1_000_000


def test_standard_mix_rescaling_preserves_shape():
    base = standard_mix()
    scaled = standard_mix(invocations=33_000, rate_scale=10.0, compute_scale=3.0)
    assert [s.name for s in scaled] == [s.name for s in base]
    # Largest-remainder split by the declared 150:120:60 weights.
    assert [s.invocations for s in scaled] == [15_000, 12_000, 6_000]
    for b, s in zip(base, scaled):
        assert s.rate_per_s == pytest.approx(b.rate_per_s * 10.0)
        assert s.compute_ns == b.compute_ns * 3
        assert s.deadline_ns == b.effective_deadline_ns() * 3
        assert s.arrival == b.arrival and s.workers == b.workers
    # Scaling preserves the per-profile deadline/compute geometry.
    for s in scaled:
        assert s.effective_deadline_ns() == 2 * s.compute_ns


def test_standard_mix_default_unchanged_and_validation():
    assert standard_mix()[0].invocations == 150
    with pytest.raises(ValueError):
        standard_mix(rate_scale=0.0)
    with pytest.raises(ValueError):
        standard_mix(compute_scale=-1.0)
    with pytest.raises(ValueError):
        standard_mix(invocations=2)  # spreads below 1 per profile


def test_standard_mix_profiles():
    mix = standard_mix()
    names = [spec.name for spec in mix]
    assert names == ["latency-critical", "bursty-service", "batch-analytics"]
    by_name = {spec.name: spec for spec in mix}
    assert by_name["latency-critical"].hot_timeout_ns is None  # always hot
    assert by_name["batch-analytics"].hot_timeout_ns == 0  # always warm
    assert by_name["bursty-service"].arrival == "bursty"
