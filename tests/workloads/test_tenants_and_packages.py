"""Tenant profiles, the noop package, and package instantiation."""

import numpy as np
import pytest

from repro.core.functions import CodePackage
from repro.sim import us
from repro.sim.rng import RngStreams
from repro.workloads.noop import noop_package
from repro.workloads.jacobi import jacobi_package
from repro.workloads.tenants import TenantSpec, standard_mix


def test_noop_package_shape():
    package = noop_package()
    assert package.size_bytes == 7_880
    assert package.index_of("echo") == 0
    output, size = package.by_index(0).execute(b"abc", 3)
    assert output == b"abc" and size == 3


def test_stateless_package_fresh_is_identity():
    package = noop_package()
    assert package.fresh() is package


def test_stateful_package_fresh_rebuilds():
    package = jacobi_package()
    fresh = package.fresh()
    assert fresh is not package
    assert fresh.name == package.name
    # Different workspace state: the closures are distinct.
    assert fresh.by_index(0).handler is not package.by_index(0).handler


def test_tenant_spec_package_runs():
    spec = TenantSpec(name="t", compute_ns=us(10), payload_bytes=128)
    package = spec.package()
    output, size = package.by_index(0).execute(b"x" * 128, 128)
    assert size == 8
    assert package.by_index(0).cost_ns(128) == us(10)
    # Virtual execution reports the fixed output size too.
    output, size = package.by_index(0).execute(None, 128)
    assert output is None and size == 8


def test_tenant_interarrival_positive_and_seeded():
    spec = TenantSpec(name="t", rate_per_s=1000.0)
    rng1 = RngStreams(5).stream("t")
    rng2 = RngStreams(5).stream("t")
    draws1 = [spec.interarrival_ns(rng1) for _ in range(10)]
    draws2 = [spec.interarrival_ns(rng2) for _ in range(10)]
    assert draws1 == draws2
    assert all(d >= 1 for d in draws1)
    # Mean roughly 1/rate.
    assert 0.2e6 < np.mean(draws1) < 5e6


def test_standard_mix_profiles():
    mix = standard_mix()
    names = [spec.name for spec in mix]
    assert names == ["latency-critical", "bursty-service", "batch-analytics"]
    by_name = {spec.name: spec for spec in mix}
    assert by_name["latency-critical"].hot_timeout_ns is None  # always hot
    assert by_name["batch-analytics"].hot_timeout_ns == 0  # always warm
    assert by_name["bursty-service"].arrival == "bursty"
