"""Determinism regression: identical seeds give bit-identical results.

This is the safety net for every fast-path change (timeout pooling,
zero-copy payloads, cached fabric paths, descriptor reuse): none of
them may alter simulated-nanosecond results, event counts, or the
latency series.  Each scenario runs twice from scratch and must match
exactly -- not approximately.
"""

from repro.core.deployment import Deployment
from repro.experiments.fig8 import run_fig8
from repro.rdma.fabric import FaultModel
from repro.workloads.noop import noop_package


def _invocation_fingerprint(faults=None):
    """The invocation-benchmark scenario, reduced for test runtime."""
    dep = Deployment.build(executors=1, clients=1, faults=faults)
    dep.settle()
    invoker = dep.new_invoker()
    package = noop_package()
    latencies = []

    def driver():
        yield from invoker.allocate(package, workers=1)
        in_buf = invoker.alloc_input(1024)
        in_buf.write(bytes(1024))
        out_buf = invoker.alloc_output(1024)
        for _ in range(20):
            future = invoker.submit("echo", in_buf, 1024, out_buf)
            result = yield future.wait()
            latencies.append(result.rtt_ns)
        return len(latencies)

    dep.run(driver())
    return dep.env.events_processed, dep.env.now, tuple(latencies)


def test_invocation_scenario_bit_identical():
    first = _invocation_fingerprint()
    second = _invocation_fingerprint()
    assert first == second
    # Sanity: the fingerprint actually carries information.
    events_processed, final_now, latencies = first
    assert events_processed > 0
    assert final_now > 0
    assert len(latencies) == 20


def test_invocation_scenario_bit_identical_with_faults():
    """Seeded fault injection must replay identically too (RNG order)."""
    first = _invocation_fingerprint(faults=FaultModel(probability=0.05, seed=123))
    second = _invocation_fingerprint(faults=FaultModel(probability=0.05, seed=123))
    assert first == second


def test_fig8_bit_identical():
    """A small Fig. 8 sweep twice: identical latency series per point."""
    kwargs = dict(sizes=(64, 4096), repetitions=5)
    first = run_fig8(**kwargs)
    second = run_fig8(**kwargs)
    assert first.sizes == second.sizes
    assert first.series == second.series
    assert first.p99 == second.p99
    # The series contain real, nonzero simulated latencies.
    assert all(
        value > 0 for points in first.series.values() for value in points.values()
    )
