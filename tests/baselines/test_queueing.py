"""Queueing-process baseline models: fit, saturation, FCFS fairness."""

import pytest

from repro.baselines.queueing import (
    Stage,
    StageSpec,
    queued_lambda,
    queued_nightcore,
    queued_openwhisk,
)
from repro.sim import Environment, ms, us


def single_client_rtt(factory, size=1_000):
    env = Environment()
    platform = factory(env)
    rtts = []

    def client():
        rtt = yield from platform.invoke(size)
        rtts.append(rtt)

    env.process(client())
    env.run()
    return rtts[0]


def test_queued_models_match_analytic_single_client():
    """Uncontended, the queued models agree with the fitted analytic
    models within ~15%."""
    assert single_client_rtt(queued_openwhisk) == pytest.approx(ms(92.5), rel=0.15)
    assert single_client_rtt(queued_nightcore) == pytest.approx(us(175), rel=0.15)
    assert single_client_rtt(queued_lambda) == pytest.approx(ms(19.5), rel=0.15)


def test_stage_queues_when_saturated():
    env = Environment()
    stage = Stage(env, StageSpec("s", servers=1, base_ns=1_000))
    done = []

    def job(tag):
        yield from stage.process(0)
        done.append((tag, env.now))

    for tag in range(3):
        env.process(job(tag))
    env.run()
    assert done == [(0, 1_000), (1, 2_000), (2, 3_000)]
    assert stage.jobs_served == 3


def test_multi_server_stage_parallelism():
    env = Environment()
    stage = Stage(env, StageSpec("s", servers=2, base_ns=1_000))
    done = []

    def job():
        yield from stage.process(0)
        done.append(env.now)

    for _ in range(4):
        env.process(job())
    env.run()
    assert done == [1_000, 1_000, 2_000, 2_000]


def test_per_byte_service_time():
    spec = StageSpec("s", servers=1, base_ns=100, per_byte_ns=0.5)
    assert spec.service_ns(0) == 100
    assert spec.service_ns(1_000) == 600


def test_openwhisk_kafka_is_the_bottleneck():
    env = Environment()
    platform = queued_openwhisk(env)
    rtts = []

    def client():
        for _ in range(5):
            rtt = yield from platform.invoke(1_000)
            rtts.append(rtt)

    for _ in range(8):
        env.process(client())
    env.run()
    # Under 8 concurrent clients latency has blown past the 1-client fit.
    assert sorted(rtts)[len(rtts) // 2] > ms(200)
    kafka = next(s for s in platform.request_path if s.spec.name == "kafka")
    assert kafka.busy_ns >= max(s.busy_ns for s in platform.request_path)


def test_lambda_does_not_queue():
    env = Environment()
    platform = queued_lambda(env)
    rtts = []

    def client():
        rtt = yield from platform.invoke(1_000)
        rtts.append(rtt)

    for _ in range(50):
        env.process(client())
    env.run()
    assert max(rtts) - min(rtts) < ms(1)
