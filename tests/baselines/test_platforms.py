"""Baseline platform models: anchors, caps, cold/warm, correctness."""

import pytest

from repro.baselines import AwsLambda, FuncX, Nightcore, OpenWhisk, base64_size
from repro.sim import Environment, ms


def warm_rtt(platform_cls, size, handler=lambda d: d, compute_ns=0, **kwargs):
    env = Environment()
    platform = platform_cls(env, **kwargs)
    results = []

    def driver():
        for _ in range(2):
            result = yield from platform.invoke(
                "f", b"x" * size, size, handler=handler, compute_ns=compute_ns
            )
            results.append(result)

    env.process(driver())
    env.run()
    assert results[0].cold and not results[1].cold
    return results[1].rtt_ns


def test_base64_size():
    assert base64_size(0) == 0
    assert base64_size(1) == 4
    assert base64_size(3) == 4
    assert base64_size(4) == 8
    assert base64_size(3000) == 4000


def test_lambda_anchor_1kb():
    rtt = warm_rtt(AwsLambda, 1_000)
    assert rtt == pytest.approx(ms(19.5), rel=0.05)  # paper: 19.5 ms


def test_lambda_anchor_5mb():
    rtt = warm_rtt(AwsLambda, 5_000_000)
    assert rtt == pytest.approx(ms(600), rel=0.05)  # paper: >600 ms


def test_lambda_ml_image_range():
    """Paper: 30-75 ms for typical ML recognition image sizes."""
    for size in (100_000, 250_000, 500_000):
        rtt = warm_rtt(AwsLambda, size)
        assert ms(25) <= rtt <= ms(80)


def test_lambda_payload_cap():
    env = Environment()
    platform = AwsLambda(env)

    def driver():
        with pytest.raises(ValueError):
            yield from platform.invoke("f", None, 7 * 1024 * 1024)

    env.process(driver())
    env.run()


def test_openwhisk_warm_latency_band():
    rtt = warm_rtt(OpenWhisk, 1_000)
    assert ms(80) <= rtt <= ms(110)


def test_openwhisk_argv_cap_125kb():
    env = Environment()
    platform = OpenWhisk(env)

    def driver():
        with pytest.raises(ValueError):
            yield from platform.invoke("f", None, 200 * 1024)

    env.process(driver())
    env.run()


def test_nightcore_sub_millisecond_small():
    rtt = warm_rtt(Nightcore, 1_000)
    assert rtt < ms(0.5)


def test_funcx_warm_at_least_90ms():
    rtt = warm_rtt(FuncX, 1_000)
    assert rtt >= ms(90)  # Sec. VI: "even warm invocations take >= 90ms"


def test_relative_ordering_of_platforms():
    """Nightcore < OpenWhisk ~ Lambda < FuncX is the paper's landscape
    at small payloads on cluster-local platforms."""
    nc = warm_rtt(Nightcore, 1_000)
    ow = warm_rtt(OpenWhisk, 1_000)
    aws = warm_rtt(AwsLambda, 1_000)
    assert nc < aws < ow


def test_cold_start_slower_than_warm():
    env = Environment()
    platform = AwsLambda(env)
    results = []

    def driver():
        for _ in range(2):
            result = yield from platform.invoke("f", b"x", 1)
            results.append(result)

    env.process(driver())
    env.run()
    assert results[0].rtt_ns - results[1].rtt_ns == pytest.approx(platform.cold_ns, rel=0.01)


def test_handler_runs_for_real_on_baselines():
    rtt = warm_rtt(AwsLambda, 4, handler=lambda d: d * 2)
    env = Environment()
    platform = Nightcore(env)
    out = []

    def driver():
        result = yield from platform.invoke("f", b"ab", 2, handler=lambda d: d[::-1])
        out.append(result.output)

    env.process(driver())
    env.run()
    assert out == [b"ba"]


def test_compute_time_added():
    base = warm_rtt(Nightcore, 1_000)
    slow = warm_rtt(Nightcore, 1_000, compute_ns=ms(5))
    assert slow - base == ms(5)


def test_rtt_monotone_in_size():
    for cls in (AwsLambda, Nightcore):
        rtts = [warm_rtt(cls, size) for size in (1_000, 10_000, 100_000, 1_000_000)]
        assert rtts == sorted(rtts)
