"""Regression tests for bugs found (and fixed) during development.

Each test encodes a failure mode that once slipped through; they are
deliberately explicit about the mechanism so a reintroduction fails
loudly.
"""

import pytest

from repro.core import CodePackage, Deployment, RFaaSConfig
from repro.core.functions import echo_function
from repro.core.rpc import rpc_connect, rpc_listen
from repro.rdma import Fabric
from repro.sim import Environment, secs


def test_rpc_send_ring_survives_back_to_back_messages():
    """BUG: the RPC layer once used a single send buffer; a second
    message posted before the NIC DMA-read the first corrupted it (the
    lease_granted + lease_terminated pair arrived as two terminateds).
    The send ring must deliver rapid-fire messages intact and in order."""
    env = Environment()
    fabric = Fabric(env)
    server = fabric.attach("server")
    client = fabric.attach("client")
    received = []

    def handler(message, conn):
        # Reply with a burst: N messages posted in the same nanosecond.
        for index in range(6):
            conn.notify({"burst": index})
        return None

    rpc_listen(server, 9000, handler)

    def client_proc():
        conn = yield from rpc_connect(client, "server", 9000)
        conn.notify({"go": True})
        for _ in range(6):
            message = yield from conn._receive(blocking=True)
            received.append(message["burst"])

    env.process(client_proc())
    env.run()
    assert received == [0, 1, 2, 3, 4, 5]


def test_lease_grant_then_instant_expiry_notification():
    """The original reproduction of the send-buffer bug: a lease with a
    1 ns timeout makes the manager post lease_granted and
    lease_terminated back to back; the client must see BOTH, grant
    first."""
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=1)
        manager_client = next(iter(inv._manager_clients.values()))
        response = yield from manager_client.request(
            {
                "type": "lease_request",
                "client": inv.name,
                "cores": 0,
                "memory_bytes": 0,
                "timeout_ns": 1,
            }
        )
        assert response["type"] == "lease_granted"
        placement_lease = response["lease_id"]
        yield dep.env.timeout(1_000_000)
        return placement_lease

    placement_lease = dep.run(driver())
    assert placement_lease in inv.terminated_leases  # the notification landed


def test_concurrent_submissions_to_one_worker_keep_payloads():
    """BUG: two outstanding requests once overwrote the worker's single
    input buffer; the first invocation echoed the second payload.
    Client-side serialization must preserve request integrity."""
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=1)
        payload_a = b"\x01\x00\x00\x00\x00\x00\x00"
        payload_b = b"\x00"
        in_a, in_b = inv.alloc_input(64), inv.alloc_input(64)
        out_a, out_b = inv.alloc_output(64), inv.alloc_output(64)
        in_a.write(payload_a)
        in_b.write(payload_b)
        fut_a = inv.submit("echo", in_a, len(payload_a), out_a, worker=0)
        fut_b = inv.submit("echo", in_b, len(payload_b), out_b, worker=0)
        res_a = yield fut_a.wait()
        res_b = yield fut_b.wait()
        return res_a.output(), res_b.output()

    out_a, out_b = dep.run(driver())
    assert out_a == b"\x01\x00\x00\x00\x00\x00\x00"
    assert out_b == b"\x00"


def test_recv_cq_vs_send_cq_not_conflated():
    """BUG: `recv_cq or send_cq` silently replaced an *empty* recv CQ
    with the send CQ because CompletionQueue defines __len__.  Distinct
    CQs must stay distinct."""
    env = Environment()
    fabric = Fabric(env)
    nic = fabric.attach("h")
    pd = nic.create_pd()
    send_cq = nic.create_cq(name="send")
    recv_cq = nic.create_cq(name="recv")
    assert len(recv_cq) == 0  # empty (falsy!) at creation
    qp = nic.create_qp(pd, send_cq, recv_cq)
    assert qp.recv_cq is recv_cq
    assert qp.send_cq is send_cq


def test_stateful_packages_do_not_share_state_across_allocations():
    """BUG: two allocations of a same-named stateful package once
    shared one workspace; one tenant's Jacobi matrix overwrote the
    other's.  `CodePackage.factory` must isolate allocations."""
    import numpy as np

    from repro.workloads.jacobi import (
        generate_system,
        jacobi_package,
        jacobi_sweep,
        pack_setup,
    )

    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv_a = dep.new_invoker(name="a")
    inv_b = dep.new_invoker(name="b")
    n = 12
    system_a = generate_system(n, seed=1)
    system_b = generate_system(n, seed=2)

    def driver():
        yield from inv_a.allocate(jacobi_package(), workers=1)
        yield from inv_b.allocate(jacobi_package(), workers=1)
        x0 = np.zeros(n)
        out_a = yield from inv_a.invoke(
            "jacobi", pack_setup(*system_a, x0, 0, n), out_capacity=8 * n
        )
        out_b = yield from inv_b.invoke(
            "jacobi", pack_setup(*system_b, x0, 0, n), out_capacity=8 * n
        )
        return out_a, out_b

    out_a, out_b = dep.run(driver())
    expected_a = jacobi_sweep(*system_a, np.zeros(n), 0, n)
    expected_b = jacobi_sweep(*system_b, np.zeros(n), 0, n)
    assert np.allclose(np.frombuffer(out_a, dtype=np.float64), expected_a)
    assert np.allclose(np.frombuffer(out_b, dtype=np.float64), expected_b)


def test_jacobi_cost_model_not_fooled_by_iterate_size():
    """BUG: the virtual-mode cost model once re-estimated n from the
    *iterate* payload (13 + 8n bytes), yielding sqrt(n) and absurdly
    cheap iterations.  The workspace must remember the setup dimension."""
    from repro.workloads.jacobi import (
        iterate_bytes,
        jacobi_function,
        jacobi_iteration_cost_ns,
        setup_bytes,
    )

    n = 2000
    spec = jacobi_function()
    spec.execute(None, setup_bytes(n))  # virtual setup call
    cost = spec.cost_ns(iterate_bytes(n))
    # The size-only estimate is sqrt(n^2 + 2n) ~ n + 1: within 1%.
    expected = jacobi_iteration_cost_ns(n, rows=n // 2)
    assert cost == pytest.approx(expected, rel=0.01)
    # The regression produced sqrt(n): two orders of magnitude off.
    assert cost > expected / 10
