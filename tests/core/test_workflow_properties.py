"""Property-based workflow tests: random DAGs execute correctly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CodePackage, Deployment, FunctionSpec, Workflow, WorkflowRunner
from repro.core.functions import echo_function


@st.composite
def random_dags(draw):
    """A random DAG: each stage depends on a subset of earlier stages."""
    n_stages = draw(st.integers(min_value=1, max_value=7))
    edges: list[tuple[int, ...]] = []
    for index in range(n_stages):
        if index == 0:
            edges.append(())
            continue
        n_deps = draw(st.integers(min_value=0, max_value=min(2, index)))
        deps = draw(
            st.lists(
                st.integers(min_value=0, max_value=index - 1),
                min_size=n_deps,
                max_size=n_deps,
                unique=True,
            )
        )
        edges.append(tuple(sorted(deps)))
    return edges


def expected_outputs(edges, initial: bytes) -> list[bytes]:
    """Replicate the DAG's dataflow locally (stamp = stage index byte)."""
    outputs: list[bytes] = []
    for index, deps in enumerate(edges):
        payload = initial if not deps else b"".join(outputs[d] for d in deps)
        outputs.append(payload + bytes([index]))
    return outputs


@given(edges=random_dags(), initial=st.binary(min_size=1, max_size=16))
@settings(max_examples=25, deadline=None)
def test_random_dag_dataflow_matches_local_evaluation(edges, initial):
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = CodePackage(name="dagpkg")
    package.add(echo_function())
    for index in range(len(edges)):
        package.add(
            FunctionSpec(
                name=f"stamp{index}",
                handler=(lambda i: lambda data: data + bytes([i]))(index),
            )
        )

    workflow = Workflow("random")
    for index, deps in enumerate(edges):
        workflow.add(
            f"n{index}",
            f"stamp{index}",
            after=tuple(f"n{d}" for d in deps),
            out_capacity=4096,
        )

    def driver():
        yield from invoker.allocate(package, workers=3)
        runner = WorkflowRunner(invoker)
        run = yield from runner.run(workflow, initial)
        return run

    run = dep.run(driver())
    expected = expected_outputs(edges, initial)
    for index in range(len(edges)):
        assert run.outputs[f"n{index}"] == expected[index], index
