"""Workflow orchestration on rFaaS (Sec. VII): DAGs, chains, timing."""

import pytest

from repro.core import CodePackage, Deployment, FunctionSpec, Workflow, WorkflowError, WorkflowRunner, chain
from repro.core.functions import echo_function
from repro.sim import us


def build_pipeline_package():
    package = CodePackage(name="pipeline")
    package.add(echo_function())
    package.add(FunctionSpec(name="upper", handler=lambda d: d.upper()))
    package.add(FunctionSpec(name="reverse", handler=lambda d: d[::-1]))
    package.add(FunctionSpec(name="exclaim", handler=lambda d: d + b"!"))
    package.add(
        FunctionSpec(name="slow", handler=lambda d: d, cost_ns=lambda s: us(200))
    )
    return package


def run_workflow(workflow, payload, workers=3, package=None):
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = package or build_pipeline_package()

    def driver():
        yield from invoker.allocate(package, workers=workers)
        runner = WorkflowRunner(invoker)
        run = yield from runner.run(workflow, payload)
        return run

    return dep.run(driver())


# -- structure validation ------------------------------------------------------


def test_validate_rejects_cycle():
    workflow = Workflow()
    workflow.add("a", "echo", after=("b",))
    workflow.add("b", "echo", after=("a",))
    with pytest.raises(WorkflowError, match="cycle"):
        workflow.validate()


def test_validate_rejects_unknown_dependency():
    workflow = Workflow().add("a", "echo", after=("ghost",))
    with pytest.raises(WorkflowError, match="unknown"):
        workflow.validate()


def test_duplicate_stage_rejected():
    workflow = Workflow().add("a", "echo")
    with pytest.raises(WorkflowError, match="duplicate"):
        workflow.add("a", "echo")


def test_topological_order_and_sources_sinks():
    workflow = Workflow()
    workflow.add("src", "echo")
    workflow.add("mid", "echo", after=("src",))
    workflow.add("out", "echo", after=("mid",))
    order = workflow.validate()
    assert order.index("src") < order.index("mid") < order.index("out")
    assert workflow.sources == ["src"]
    assert workflow.sinks == ["out"]


def test_chain_builder():
    workflow = chain("demo", "upper", "reverse")
    assert len(workflow.stages) == 2
    assert workflow.validate()


# -- execution ------------------------------------------------------------------


def test_linear_chain_transforms_payload():
    workflow = chain("demo", "upper", "reverse", "exclaim")
    run = run_workflow(workflow, b"hello")
    assert run.result(workflow) == b"OLLEH!"


def test_fan_out_fan_in_concatenates_in_order():
    workflow = Workflow()
    workflow.add("split", "echo")
    workflow.add("left", "upper", after=("split",))
    workflow.add("right", "reverse", after=("split",))
    workflow.add("join", "exclaim", after=("left", "right"))
    run = run_workflow(workflow, b"ab")
    assert run.outputs["left"] == b"AB"
    assert run.outputs["right"] == b"ba"
    assert run.result(workflow) == b"ABba!"


def test_independent_stages_run_in_parallel():
    """Two 200 us stages on two workers overlap almost fully."""
    workflow = Workflow()
    workflow.add("a", "slow")
    workflow.add("b", "slow")
    run = run_workflow(workflow, b"x", workers=2)
    assert run.makespan_ns < int(1.5 * us(200))


def test_dependent_stages_serialize():
    workflow = Workflow()
    workflow.add("a", "slow")
    workflow.add("b", "slow", after=("a",))
    run = run_workflow(workflow, b"x", workers=2)
    assert run.makespan_ns >= 2 * us(200)


def test_per_stage_overhead_single_digit_microseconds():
    """Sec. VII's claim: orchestration adds only microseconds."""
    workflow = chain("hops", "echo", "echo", "echo", "echo")
    run = run_workflow(workflow, b"tiny")
    per_stage = run.makespan_ns / 4
    assert per_stage < us(10)


def test_result_requires_single_sink():
    workflow = Workflow()
    workflow.add("a", "echo")
    workflow.add("b", "echo")
    run = run_workflow(workflow, b"x")
    with pytest.raises(WorkflowError):
        run.result(workflow)
    assert run.outputs["a"] == run.outputs["b"] == b"x"


def test_stage_rtts_recorded():
    workflow = chain("demo", "upper", "reverse")
    run = run_workflow(workflow, b"abc")
    assert set(run.stage_rtt_ns) == set(workflow.stages)
    assert all(rtt > 0 for rtt in run.stage_rtt_ns.values())
