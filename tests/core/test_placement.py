"""Placement-policy contract tests.

``RoundRobinFirstFit`` must preserve the manager's historical scan
semantics exactly (these tests pin them), and ``SoACapacity`` must make
identical decisions on identical state -- the control-plane kernel
(:mod:`repro.experiments.control`) depends on that equivalence for its
bit-identity guarantee.
"""

import numpy as np
import pytest

from repro.core.placement import RoundRobinFirstFit, SoACapacity
from repro.core.resource_manager import ExecutorRecord


def record(name, cores=4, memory=1000, alive=True):
    return ExecutorRecord(
        name=name,
        host=name,
        port=1,
        cores=cores,
        memory_bytes=memory,
        free_cores=cores,
        free_memory=memory,
        alive=alive,
    )


def pool(*records):
    return {r.name: r for r in records}


class TestRoundRobinFirstFit:
    def test_scans_sorted_names_from_cursor(self):
        executors = pool(record("b"), record("a"), record("c"))
        policy = RoundRobinFirstFit()
        assert policy.pick(executors, 1, 10).name == "a"
        assert policy.rr_index == 1
        assert policy.pick(executors, 1, 10).name == "b"
        assert policy.pick(executors, 1, 10).name == "c"
        # Wraps back to the start.
        assert policy.pick(executors, 1, 10).name == "a"
        assert policy.rr_index == 1

    def test_skips_record_without_capacity(self):
        executors = pool(record("a", cores=1), record("b", cores=8))
        policy = RoundRobinFirstFit()
        assert policy.pick(executors, 4, 10).name == "b"
        # Cursor lands past the winner: b is index 1, so cursor wraps to 0.
        assert policy.rr_index == 0

    def test_memory_and_core_constraints(self):
        executors = pool(record("a", memory=100), record("b", memory=1000))
        policy = RoundRobinFirstFit()
        assert policy.pick(executors, 1, 500).name == "b"
        assert policy.pick(executors, 1, 5000) is None

    def test_oversubscription_ignores_cores_only(self):
        executors = pool(record("a", cores=1, memory=100))
        policy = RoundRobinFirstFit()
        assert policy.pick(executors, 16, 50, allow_oversubscription=True).name == "a"
        assert policy.pick(executors, 16, 500, allow_oversubscription=True) is None

    def test_dead_record_consumes_scan_step_but_never_wins(self):
        executors = pool(record("a", alive=False), record("b"))
        policy = RoundRobinFirstFit()
        picked = policy.pick(executors, 1, 10)
        assert picked.name == "b"
        # b is at scan step 1 from cursor 0, so the cursor moves to
        # (0 + 1 + 1) % 2 == 0 -- the dead record counted as a step.
        assert policy.rr_index == 0

    def test_full_miss_leaves_cursor(self):
        executors = pool(record("a"), record("b"))
        policy = RoundRobinFirstFit()
        policy.pick(executors, 1, 10)
        cursor = policy.rr_index
        assert policy.pick(executors, 64, 10) is None
        assert policy.rr_index == cursor

    def test_empty_pool(self):
        policy = RoundRobinFirstFit()
        assert policy.pick({}, 1, 10) is None

    def test_membership_change_invalidates_cache(self):
        executors = pool(record("a"), record("c"))
        policy = RoundRobinFirstFit()
        policy.pick(executors, 1, 10)
        executors["b"] = record("b")
        policy.invalidate()
        names = [policy.pick(executors, 1, 10).name for _ in range(3)]
        assert sorted(names) == ["a", "b", "c"]


class TestSoAEquivalence:
    """SoACapacity must mirror RoundRobinFirstFit decision for decision."""

    def test_randomized_lockstep(self):
        rng = np.random.default_rng(7)
        size = 12
        names = [f"x{i:02d}" for i in range(size)]
        executors = {name: record(name, cores=8, memory=800) for name in names}
        scalar = RoundRobinFirstFit()
        soa = SoACapacity.uniform(size, 8, 800)
        held: list[tuple[int, int, int]] = []  # (index, cores, memory)

        for step in range(2000):
            action = rng.integers(0, 10)
            if action < 6:  # pick + grant
                cores = int(rng.integers(1, 5))
                memory = int(rng.integers(1, 400))
                want = scalar.pick(executors, cores, memory)
                got = soa.pick(cores, memory)
                if want is None:
                    assert got == -1, f"step {step}: scalar missed, soa picked {got}"
                else:
                    assert names[got] == want.name, f"step {step}"
                    want.free_cores -= cores
                    want.free_memory -= memory
                    soa.grant(got, cores, memory)
                    held.append((got, cores, memory))
                assert scalar.rr_index == soa.rr_index, f"step {step}"
            elif action < 8 and held:  # reclaim a random holding
                index, cores, memory = held.pop(int(rng.integers(0, len(held))))
                if executors[names[index]].alive:
                    executors[names[index]].free_cores += cores
                    executors[names[index]].free_memory += memory
                    soa.reclaim(index, cores, memory)
            elif action == 8:  # kill a random alive node
                index = int(rng.integers(0, size))
                if executors[names[index]].alive:
                    executors[names[index]].alive = False
                    soa.kill(index)
                    held = [h for h in held if h[0] != index]
            else:  # revive a random dead node at full capacity
                index = int(rng.integers(0, size))
                if not executors[names[index]].alive:
                    executors[names[index]].alive = True
                    executors[names[index]].free_cores = 8
                    executors[names[index]].free_memory = 800
                    soa.revive(index)

        assert np.array_equal(
            soa.free_cores, [executors[n].free_cores for n in names]
        )
        assert np.array_equal(
            soa.free_memory, [executors[n].free_memory for n in names]
        )

    def test_oversubscription_parity(self):
        executors = pool(record("a", cores=1, memory=100), record("b", cores=1, memory=100))
        scalar = RoundRobinFirstFit()
        soa = SoACapacity.uniform(2, 1, 100)
        for cores, memory, oversub in [(4, 50, True), (4, 50, False), (1, 50, False)]:
            want = scalar.pick(executors, cores, memory, oversub)
            got = soa.pick(cores, memory, oversub)
            if want is None:
                assert got == -1
            else:
                assert ["a", "b"][got] == want.name
                want.free_cores -= cores
                want.free_memory -= memory
                soa.grant(got, cores, memory)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SoACapacity(np.array([1, 2]), np.array([1]))


class TestManagerPickExecutor:
    """The manager's `_pick_executor` delegates without behavior change."""

    def _manager(self):
        from repro.core.resource_manager import ResourceManager
        from repro.rdma.fabric import Fabric
        from repro.sim.wheel import new_environment

        env = new_environment("heap")
        manager = ResourceManager(Fabric(env).attach("m"), name="m")
        for name in ("e2", "e0", "e1"):
            manager.register_record(name, host=name, port=1, cores=4, memory_bytes=100)
        return manager

    def test_round_robin_order_is_sorted_names(self):
        manager = self._manager()
        picks = [manager._pick_executor(1, 10).name for _ in range(4)]
        assert picks == ["e0", "e1", "e2", "e0"]

    def test_dead_executor_skipped(self):
        manager = self._manager()
        manager.executors["e0"].alive = False
        picks = [manager._pick_executor(1, 10).name for _ in range(3)]
        assert picks == ["e1", "e2", "e1"]

    def test_rr_index_proxy(self):
        manager = self._manager()
        manager._rr_index = 2
        assert manager.placement.rr_index == 2
        assert manager._pick_executor(1, 10).name == "e2"
        assert manager._rr_index == 0
