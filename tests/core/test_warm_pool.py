"""Warm container pool mechanics."""

import pytest

from repro.core import Deployment, RFaaSConfig
from repro.core.sandbox import BARE_METAL, DOCKER
from repro.sim import ms, secs

from tests.core.conftest import make_package


def build(pool=2, sandbox="docker"):
    config = RFaaSConfig(warm_pool_size=pool, warm_pool_sandbox=sandbox)
    dep = Deployment.build(executors=1, clients=1, config=config)
    dep.settle()
    return dep


def test_pool_fills_in_background():
    dep = build(pool=3)
    executor = dep.executors[0]
    assert executor.warm_pool == 0  # boots take ~2.55 s each
    dep.env.run(until=dep.env.now + secs(9))
    assert executor.warm_pool == 3


def test_pool_hit_skips_boot():
    dep = build(pool=1)
    dep.env.run(until=dep.env.now + secs(3))
    invoker = dep.new_invoker()
    package = make_package()

    def driver():
        breakdown = yield from invoker.allocate(package, workers=1, sandbox="docker")
        return breakdown

    breakdown = dep.run(driver())
    assert breakdown.spawn_workers == DOCKER.pool_spawn_ns(1)
    assert dep.executors[0].pool_hits == 1


def test_pool_miss_pays_full_boot():
    dep = build(pool=1)
    # Do NOT wait for the pool to fill: the first allocation misses.
    invoker = dep.new_invoker()
    package = make_package()

    def driver():
        breakdown = yield from invoker.allocate(package, workers=1, sandbox="docker")
        return breakdown

    breakdown = dep.run(driver())
    assert breakdown.spawn_workers == DOCKER.spawn_ns(1)
    assert dep.executors[0].pool_misses == 1


def test_pool_refills_after_hit():
    dep = build(pool=1)
    dep.env.run(until=dep.env.now + secs(3))
    invoker = dep.new_invoker()
    package = make_package()

    def driver():
        yield from invoker.allocate(package, workers=1, sandbox="docker")
        yield dep.env.timeout(secs(3))  # replacement boots
        return dep.executors[0].warm_pool

    assert dep.run(driver()) == 1


def test_pool_only_serves_matching_sandbox():
    dep = build(pool=1, sandbox="docker")
    dep.env.run(until=dep.env.now + secs(3))
    invoker = dep.new_invoker()
    package = make_package()

    def driver():
        breakdown = yield from invoker.allocate(package, workers=1, sandbox="bare-metal")
        return breakdown

    breakdown = dep.run(driver())
    assert breakdown.spawn_workers == BARE_METAL.spawn_ns(1)
    assert dep.executors[0].warm_pool == 1  # untouched


def test_pool_disabled_by_default():
    config = RFaaSConfig()
    assert config.warm_pool_size == 0
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    assert dep.executors[0].warm_pool == 0
