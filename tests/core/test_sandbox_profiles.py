"""Pinned spawn costs for every sandbox profile.

The cold-start spectrum (``coldstart`` experiment, Fig. 9) prices a
dry-pool spin-up at ``spawn_ns(1)`` of the selected profile, so these
numbers are simulated-domain outputs: a drifted constant silently
reshapes every cold-start fraction and sojourn tail in the benches.
Paper anchors -- bare-metal ~25 ms and Docker ~2.7 s (Fig. 9a/9b),
microVM 125 ms boots [30], MITOSIS-style remote fork ~1 ms.
"""

import pytest

from repro.core.sandbox import SANDBOX_PROFILES

MS = 1_000_000
US = 1_000

#: (profile, spawn_ns(1), pool_spawn_ns(1)) -- single-worker executors,
#: the configuration every cold spin-up in the scale engine prices.
PINNED = [
    ("bare-metal", 20 * MS, 5 * MS),
    ("docker", 2_700 * MS, 108 * MS),
    ("microvm", 125 * MS, 5 * MS),
    ("remote-fork", 1 * MS, 550 * US),
]


def test_profile_registry_complete():
    assert set(SANDBOX_PROFILES) == {name for name, _, _ in PINNED}


@pytest.mark.parametrize("name,spawn,pool_spawn", PINNED)
def test_single_worker_spawn_pinned(name, spawn, pool_spawn):
    profile = SANDBOX_PROFILES[name]
    assert profile.spawn_ns(1) == spawn
    assert profile.pool_spawn_ns(1) == pool_spawn


@pytest.mark.parametrize("name,spawn,pool_spawn", PINNED)
def test_spawn_scales_linearly_in_workers(name, spawn, pool_spawn):
    profile = SANDBOX_PROFILES[name]
    assert profile.spawn_ns(4) == spawn + 3 * profile.spawn_per_worker_ns
    assert profile.pool_spawn_ns(4) == pool_spawn + 3 * profile.pool_per_worker_ns


def test_remote_fork_collapses_the_tradeoff():
    # The MITOSIS argument: a remote fork must be orders of magnitude
    # below the container paths, and cheaper than any pool attach save
    # its own.
    fork = SANDBOX_PROFILES["remote-fork"].spawn_ns(1)
    assert fork * 100 <= SANDBOX_PROFILES["microvm"].spawn_ns(1)
    assert fork * 2000 <= SANDBOX_PROFILES["docker"].spawn_ns(1)
    assert fork <= SANDBOX_PROFILES["bare-metal"].pool_spawn_ns(1)
