"""Lease authentication (Sec. III-E): MAC-signed leases."""

import pytest

from repro.core import AllocationError, Deployment
from repro.core.leases import sign_lease, verify_lease_token
from repro.core.rpc import rpc_connect

from tests.core.conftest import make_package

SECRET = b"rfaas-cluster-secret"


def test_sign_verify_roundtrip():
    token = sign_lease(SECRET, 42, "tenant", 4, 1 << 30)
    assert verify_lease_token(SECRET, token, 42, "tenant", 4, 1 << 30)


def test_verification_fails_on_any_tampering():
    token = sign_lease(SECRET, 42, "tenant", 4, 1 << 30)
    assert not verify_lease_token(SECRET, token, 43, "tenant", 4, 1 << 30)
    assert not verify_lease_token(SECRET, token, 42, "other", 4, 1 << 30)
    assert not verify_lease_token(SECRET, token, 42, "tenant", 8, 1 << 30)  # more cores!
    assert not verify_lease_token(SECRET, token, 42, "tenant", 4, 1 << 31)  # more memory!
    assert not verify_lease_token(b"wrong-secret", token, 42, "tenant", 4, 1 << 30)
    assert not verify_lease_token(SECRET, "", 42, "tenant", 4, 1 << 30)


def test_legitimate_allocation_passes_auth():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=2)
        return (yield from inv.invoke("echo", b"authd"))

    assert dep.run(driver()) == b"authd"


def test_forged_allocation_rejected_by_executor():
    """A client bypassing the manager (self-issued lease) is refused."""
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()
    dep.package_registry[package.name] = package
    executor = dep.executors[0]

    def driver():
        conn = yield from rpc_connect(inv.nic, executor.nic.name, executor.port)
        response = yield from conn.call(
            {
                "type": "allocate",
                "lease_id": 99_999,
                "token": "forged" * 10,
                "tenant": inv.name,
                "workers": 36,  # grab the whole node
                "memory_bytes": 1 << 30,
                "sandbox": "bare-metal",
                "package": package.name,
                "code_padding": b"",
                "billing_addr": 0,
                "billing_rkey": 0,
                "hot_timeout_ns": None,
                "buffer_bytes": None,
                "virtual_buffers": None,
            }
        )
        return response

    response = dep.run(driver())
    assert response.get("error") == "lease authentication failed"
    assert executor.free_cores == 36  # nothing was claimed


def test_inflated_lease_rejected():
    """A real token for 1 worker cannot be replayed for 36 workers."""
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()
    executor = dep.executors[0]

    def driver():
        # Get a legitimate 1-worker lease...
        yield from inv.allocate(package, workers=1)
        lease = next(iter(inv.leases.values()))
        token = sign_lease(
            dep.config.cluster_secret, lease.lease_id, inv.name, 1, lease.memory_bytes
        )
        # ...then replay its token asking for 8 workers.
        conn = yield from rpc_connect(inv.nic, executor.nic.name, executor.port)
        response = yield from conn.call(
            {
                "type": "allocate",
                "lease_id": lease.lease_id,
                "token": token,
                "tenant": inv.name,
                "workers": 8,
                "memory_bytes": lease.memory_bytes,
                "sandbox": "bare-metal",
                "package": package.name,
                "code_padding": b"",
                "billing_addr": 0,
                "billing_rkey": 0,
                "hot_timeout_ns": None,
                "buffer_bytes": None,
                "virtual_buffers": None,
            }
        )
        return response

    response = dep.run(driver())
    assert response.get("error") == "lease authentication failed"
