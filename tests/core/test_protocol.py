"""Wire-format tests: header, immediates, control encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import protocol


def test_header_roundtrip():
    data = protocol.pack_header(0xDEADBEEF_CAFEBABE, 0x1234)
    assert len(data) == protocol.HEADER_BYTES == 12
    assert protocol.unpack_header(data) == (0xDEADBEEF_CAFEBABE, 0x1234)


def test_header_too_short_rejected():
    with pytest.raises(ValueError):
        protocol.unpack_header(b"short")


@given(addr=st.integers(min_value=0, max_value=2**64 - 1), rkey=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_header_roundtrip_property(addr, rkey):
    assert protocol.unpack_header(protocol.pack_header(addr, rkey)) == (addr, rkey)


@given(inv=st.integers(min_value=0, max_value=65535), fn=st.integers(min_value=0, max_value=65535))
@settings(max_examples=50, deadline=None)
def test_request_imm_roundtrip(inv, fn):
    imm = protocol.pack_request_imm(inv, fn)
    assert 0 <= imm < 2**32
    assert protocol.unpack_request_imm(imm) == (inv, fn)


@given(inv=st.integers(min_value=0, max_value=65535), status=st.integers(min_value=0, max_value=65535))
@settings(max_examples=50, deadline=None)
def test_response_imm_roundtrip(inv, status):
    assert protocol.unpack_response_imm(protocol.pack_response_imm(inv, status)) == (inv, status)


def test_imm_range_validation():
    with pytest.raises(ValueError):
        protocol.pack_request_imm(70_000, 0)
    with pytest.raises(ValueError):
        protocol.pack_request_imm(0, -1)
    with pytest.raises(ValueError):
        protocol.pack_response_imm(-1, 0)


def test_control_encoding_roundtrip():
    message = {"type": "lease_request", "cores": 4, "nested": [1, 2, {"x": "y"}]}
    assert protocol.decode_control(protocol.encode_control(message)) == message


def test_status_codes_distinct():
    codes = {
        protocol.STATUS_OK,
        protocol.STATUS_REJECTED,
        protocol.STATUS_FUNCTION_NOT_FOUND,
        protocol.STATUS_FAILED,
    }
    assert len(codes) == 4
