"""RPC layer: calls, generator handlers, one-way notifies, id echo."""

import pytest

from repro.core.rpc import rpc_connect, rpc_listen
from repro.rdma import Fabric
from repro.rdma.errors import RdmaError
from repro.sim import Environment


def setup():
    env = Environment()
    fabric = Fabric(env)
    server = fabric.attach("server")
    client = fabric.attach("client")
    return env, server, client


def test_request_response():
    env, server, client = setup()

    def handler(message, conn):
        return {"echo": message["value"] * 2}

    rpc_listen(server, 9000, handler)

    def client_proc():
        conn = yield from rpc_connect(client, "server", 9000)
        response = yield from conn.call({"value": 21})
        return response

    proc = env.process(client_proc())
    env.run()
    assert proc.value == {"echo": 42}


def test_generator_handler_with_simulated_work():
    env, server, client = setup()

    def handler(message, conn):
        def work():
            yield conn.env.timeout(5_000)
            return {"done_at": conn.env.now}

        return work()

    rpc_listen(server, 9000, handler)

    def client_proc():
        conn = yield from rpc_connect(client, "server", 9000)
        return (yield from conn.call({}))

    proc = env.process(client_proc())
    env.run()
    assert proc.value["done_at"] >= 5_000


def test_sequential_calls_on_one_connection():
    env, server, client = setup()
    seen = []

    def handler(message, conn):
        seen.append(message["n"])
        return {"n": message["n"]}

    rpc_listen(server, 9000, handler)

    def client_proc():
        conn = yield from rpc_connect(client, "server", 9000)
        results = []
        for n in range(5):
            response = yield from conn.call({"n": n})
            results.append(response["n"])
        return results

    proc = env.process(client_proc())
    env.run()
    assert proc.value == [0, 1, 2, 3, 4]
    assert seen == [0, 1, 2, 3, 4]


def test_one_way_notify_gets_no_response():
    env, server, client = setup()
    received = []

    def handler(message, conn):
        received.append(message)
        return None  # one-way

    rpc_listen(server, 9000, handler)

    def client_proc():
        conn = yield from rpc_connect(client, "server", 9000)
        conn.notify({"event": "x"})
        yield env.timeout(5_000_000)
        assert len(conn.qp.recv_cq) == 0

    env.process(client_proc())
    env.run()
    assert received == [{"event": "x"}]


def test_rpc_id_echoed_in_response():
    env, server, client = setup()

    def handler(message, conn):
        return {"pong": True}

    rpc_listen(server, 9000, handler)

    def client_proc():
        conn = yield from rpc_connect(client, "server", 9000)
        return (yield from conn.call({"type": "ping", "_rpc_id": 77}))

    proc = env.process(client_proc())
    env.run()
    assert proc.value == {"pong": True, "_rpc_id": 77}


def test_oversized_message_rejected():
    env, server, client = setup()
    rpc_listen(server, 9000, lambda m, c: m)

    def client_proc():
        conn = yield from rpc_connect(client, "server", 9000)
        with pytest.raises(RdmaError):
            conn.notify({"blob": bytes(200_000)})
        yield env.timeout(1)

    env.process(client_proc())
    env.run()


def test_two_clients_independent_connections():
    env, server, client = setup()
    fabric = server.fabric
    client2 = fabric.attach("client2")

    def handler(message, conn):
        return {"from": message["who"]}

    rpc_listen(server, 9000, handler)
    results = {}

    def client_proc(nic, who):
        conn = yield from rpc_connect(nic, "server", 9000)
        response = yield from conn.call({"who": who})
        results[who] = response

    env.process(client_proc(client, "a"))
    env.process(client_proc(client2, "b"))
    env.run()
    assert results == {"a": {"from": "a"}, "b": {"from": "b"}}
