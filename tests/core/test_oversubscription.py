"""Oversubscription and rejection/redirect (Sec. III-D, Fig. 6)."""

import pytest

from repro.cluster.node import NodeSpec
from repro.core import CodePackage, Deployment, FunctionSpec, InvocationRejected, RFaaSConfig
from repro.core.functions import echo_function
from repro.sim import GiB, ms, us


def build_oversubscribed(executors=2):
    """Tiny 1-core nodes so a 2-worker allocation oversubscribes."""
    config = RFaaSConfig(allow_oversubscription=True, hot_timeout_ns=0)
    dep = Deployment.build(
        executors=executors,
        clients=1,
        config=config,
        node_spec=NodeSpec(cores=1, memory_bytes=8 * GiB),
    )
    dep.settle()
    return dep


def slow_package():
    package = CodePackage(name="p")
    package.add(FunctionSpec(name="slow", handler=lambda d: d, cost_ns=lambda s: ms(10)))
    package.add(echo_function())
    return package


def test_warm_rejection_redirects_to_other_executor():
    dep = build_oversubscribed(executors=2)
    inv = dep.new_invoker()
    package = slow_package()

    def driver():
        # Two workers on executor A (oversubscribed: 2 workers, 1 core),
        # one worker on executor B.
        yield from inv.allocate(package, workers=2, memory_bytes=GiB)
        yield from inv.allocate(package, workers=1, memory_bytes=GiB)
        in_buf = inv.alloc_input(64)
        out_buf1 = inv.alloc_output(64)
        out_buf2 = inv.alloc_output(64)
        in_buf.write(b"ab")
        # First slow call occupies executor A's only core...
        f1 = inv.submit("slow", in_buf, 2, out_buf1, worker=0)
        yield dep.env.timeout(us(50))
        # ...second call to A's other worker gets rejected, redirects.
        f2 = inv.submit("slow", in_buf, 2, out_buf2, worker=1)
        r2 = yield f2.wait()
        r1 = yield f1.wait()
        return r1, r2, f2.redirects

    r1, r2, redirects = dep.run(driver())
    assert r1.ok and r2.ok
    assert redirects == 1


def test_all_rejected_fails_with_invocation_rejected():
    """When the node's core is reclaimed externally (e.g. by the batch
    system), every warm worker rejects and the client gives up."""
    dep = build_oversubscribed(executors=1)
    inv = dep.new_invoker()
    package = slow_package()

    def driver():
        yield from inv.allocate(package, workers=2, memory_bytes=GiB)
        # An outside occupant (arriving batch job) takes the only core.
        claim = dep.executors[0].node.try_claim(1, 0)
        assert claim is not None
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"ab")
        future = inv.submit("slow", in_buf, 2, out_buf, worker=0)
        error = None
        try:
            yield future.wait()
        except InvocationRejected as exc:
            error = str(exc)
        claim.release()
        return error, future.redirects

    error, redirects = dep.run(driver())
    assert error is not None and "rejected" in error
    # One redirect to the second worker, one final attempt that found
    # no untried worker and gave up.
    assert redirects == 2


def test_rejection_is_fast_microseconds():
    """The paper: rejection is processed with microsecond latency."""
    dep = build_oversubscribed(executors=2)
    inv = dep.new_invoker()
    package = slow_package()

    def driver():
        yield from inv.allocate(package, workers=2, memory_bytes=GiB)
        yield from inv.allocate(package, workers=1, memory_bytes=GiB)
        in_buf = inv.alloc_input(64)
        out1, out2 = inv.alloc_output(64), inv.alloc_output(64)
        in_buf.write(b"ab")
        inv.submit("slow", in_buf, 2, out1, worker=0)
        yield dep.env.timeout(us(50))
        t0 = dep.env.now
        f2 = inv.submit("slow", in_buf, 2, out2, worker=1)
        r2 = yield f2.wait()
        # Total = rejection round-trip + redirect + 10 ms execution.
        overhead = (dep.env.now - t0) - ms(10)
        return overhead

    overhead = dep.run(driver())
    assert overhead < us(50)


def test_not_oversubscribed_when_workers_fit():
    config = RFaaSConfig(allow_oversubscription=True)
    dep = Deployment.build(executors=1, clients=1, config=config)
    dep.settle()
    inv = dep.new_invoker()
    package = slow_package()

    def driver():
        yield from inv.allocate(package, workers=4, memory_bytes=GiB)
        return dep.executors[0].oversubscribed

    assert dep.run(driver()) is False
