"""Deployment builder, client buffers, completion modes."""

import pytest

from repro.core import Deployment, RFaaSConfig
from repro.core.invoker import ClientBuffer
from repro.core.protocol import HEADER_BYTES
from repro.rdma.latency import LatencyModel

from tests.core.conftest import make_package


def test_build_shapes():
    dep = Deployment.build(executors=3, managers=2, clients=2)
    assert len(dep.executors) == 3
    assert len(dep.managers) == 2
    assert len(dep.client_nodes) == 2
    names = dep.fabric.names()
    assert {"manager0", "manager1", "executor0", "client0"} <= set(names)


def test_executors_split_across_managers():
    dep = Deployment.build(executors=4, managers=2)
    dep.settle()
    assert sorted(len(m.executors) for m in dep.managers) == [2, 2]


def test_add_client_node():
    dep = Deployment.build(executors=1, clients=1)
    node = dep.add_client_node()
    assert node.name == "client1"
    assert len(dep.client_nodes) == 2
    invoker = dep.new_invoker(client_index=1)
    assert invoker.nic is node.nic


def test_custom_latency_model_threading():
    model = LatencyModel.soft_roce()
    dep = Deployment.build(executors=1, latency_model=model)
    assert dep.fabric.model is model
    assert dep.executors[0].nic.model is model


def test_shared_package_registry():
    dep = Deployment.build(executors=2, clients=1)
    invoker = dep.new_invoker()
    assert invoker.package_registry is dep.package_registry
    assert dep.executors[0].package_registry is dep.package_registry


def test_run_drains_when_no_process():
    dep = Deployment.build(executors=1)
    # run() without a driver drains the (heartbeat-free) startup events.
    dep.settle()
    assert dep.env.now > 0


# -- client buffers -----------------------------------------------------------


def make_invoker():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    return dep, dep.new_invoker()


def test_input_buffer_reserves_header_room():
    dep, invoker = make_invoker()
    buf = invoker.alloc_input(100)
    assert buf.payload_offset == HEADER_BYTES
    assert buf.capacity == 100
    buf.write(b"abc")
    assert buf.read(3) == b"abc"
    # The header region is independent of the payload region.
    assert buf.mr.read(0, HEADER_BYTES) == bytes(HEADER_BYTES)


def test_output_buffer_no_header():
    dep, invoker = make_invoker()
    buf = invoker.alloc_output(50)
    assert buf.payload_offset == 0
    assert buf.capacity == 50
    assert not buf.is_virtual


def test_virtual_buffers_flagged():
    dep, invoker = make_invoker()
    buf = invoker.alloc_input(1 << 26, virtual=True)
    assert buf.is_virtual


def test_buffer_write_offset():
    dep, invoker = make_invoker()
    buf = invoker.alloc_input(32)
    buf.write(b"xy", offset=10)
    assert buf.read(2, offset=10) == b"xy"


# -- completion modes -----------------------------------------------------------


def test_blocking_completion_mode_adds_latency():
    def rtt(mode):
        dep = Deployment.build(executors=1, clients=1)
        dep.settle()
        invoker = dep.new_invoker(completion_mode=mode)
        package = make_package()

        def driver():
            yield from invoker.allocate(package, workers=1)
            in_buf = invoker.alloc_input(64)
            out_buf = invoker.alloc_output(64)
            in_buf.write(b"zz")
            future = invoker.submit("echo", in_buf, 2, out_buf)
            result = yield future.wait()
            return result.rtt_ns

        return dep.run(driver())

    polling = rtt("polling")
    blocking = rtt("blocking")
    model = LatencyModel()
    assert blocking - polling == model.blocking_notify_ns - model.poll_detect_ns


def test_invalid_completion_mode_rejected():
    dep = Deployment.build(executors=1, clients=1)
    with pytest.raises(ValueError):
        dep.new_invoker(completion_mode="psychic")
