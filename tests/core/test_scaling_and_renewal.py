"""Client-library extensions: map(), scale_to(), lease renewal,
manager failover, manager-driven executor reclamation."""

import pytest

from repro.core import AllocationError, Deployment, LeaseExpired, RFaaSConfig
from repro.core.invoker import Invoker
from repro.sim import GiB, ms, secs

from tests.core.conftest import make_package


def build(executors=2, managers=1, config=None):
    dep = Deployment.build(executors=executors, managers=managers, clients=1, config=config)
    dep.settle()
    return dep


# -- map ---------------------------------------------------------------------


def test_map_returns_results_in_payload_order():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=4)
        payloads = [bytes([i]) * 4 for i in range(10)]
        outputs = yield from inv.map("double", payloads)
        return payloads, outputs

    payloads, outputs = dep.run(driver())
    assert outputs == [bytes(((b * 2) % 256 for b in p)) for p in payloads]


def test_map_spreads_load_across_workers():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=4)
        yield from inv.map("echo", [b"x"] * 8)
        return None

    dep.run(driver())
    allocation = next(iter(dep.executors[0].allocations.values()))
    counts = [worker.stats.invocations for worker in allocation.workers]
    assert all(count == 2 for count in counts)


# -- scale_to ------------------------------------------------------------------


def test_scale_to_spills_across_executors():
    dep = build(executors=2)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        # 50 workers cannot fit one 36-core executor: must split.
        total = yield from inv.scale_to(package, 50, memory_bytes=1 * GiB)
        return total

    assert dep.run(driver()) == 50
    hosts = {lease.executor_host for lease in inv.leases.values()}
    assert len(hosts) == 2


def test_scale_to_idempotent_when_met():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=4)
        before = len(inv.leases)
        yield from inv.scale_to(package, 4)
        return before, len(inv.leases)

    before, after = dep.run(driver())
    assert before == after == 1


def test_scale_to_raises_when_impossible():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        with pytest.raises(AllocationError):
            yield from inv.scale_to(package, 40)  # > 36 cores total
        yield dep.env.timeout(1)

    dep.run(driver())


# -- lease renewal ----------------------------------------------------------------


def test_renewal_keeps_lease_alive_past_original_expiry():
    config = RFaaSConfig(lease_timeout_ns=secs(2))
    dep = build(executors=1, config=config)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        lease_id = next(iter(inv.leases))
        # Renew twice, each time before expiry.
        for _ in range(2):
            yield dep.env.timeout(secs(1.5))
            yield from inv.renew_lease(lease_id)
        # Well past the original 2 s expiry; still alive and usable.
        out = yield from inv.invoke("echo", b"still-here")
        return out, lease_id

    out, lease_id = dep.run(driver())
    assert out == b"still-here"
    assert lease_id not in inv.terminated_leases


def test_renewal_of_expired_lease_denied():
    config = RFaaSConfig(lease_timeout_ns=secs(1))
    dep = build(executors=1, config=config)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        lease_id = next(iter(inv.leases))
        yield dep.env.timeout(secs(3))  # expired
        with pytest.raises(LeaseExpired):
            yield from inv.renew_lease(lease_id)
        yield dep.env.timeout(1)

    dep.run(driver())


def test_expiry_reclaims_executor_resources():
    """The manager tells the executor to tear the allocation down."""
    config = RFaaSConfig(lease_timeout_ns=secs(1), executor_idle_timeout_ns=secs(3600))
    dep = build(executors=1, config=config)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=4)
        assert dep.executors[0].free_cores == 32
        yield dep.env.timeout(secs(3))
        return dep.executors[0].free_cores, len(dep.executors[0].allocations)

    free_cores, allocations = dep.run(driver())
    assert free_cores == 36
    assert allocations == 0


# -- manager failover -------------------------------------------------------------


def test_allocation_fails_over_to_live_manager():
    dep = build(executors=2, managers=2)
    inv = dep.new_invoker()
    package = make_package()
    dep.managers[0].kill()

    def driver():
        yield from inv.allocate(package, workers=1)
        out = yield from inv.invoke("echo", b"failover")
        return out

    assert dep.run(driver()) == b"failover"


def test_all_managers_dead_raises():
    dep = build(executors=1, managers=1)
    inv = dep.new_invoker()
    package = make_package()
    dep.managers[0].kill()

    def driver():
        with pytest.raises(AllocationError):
            yield from inv.allocate(package, workers=1)
        yield dep.env.timeout(1)

    dep.run(driver())
