"""Remaining public-API corners."""

import pytest

from repro.core import CodePackage, Deployment, RFaaSError
from repro.core.functions import echo_function
from repro.experiments.common import measure_rfaas_rtts
from repro.sim import GB, GiB, KB, KiB, MB, MiB, ns_to_ms, ns_to_s, ns_to_us

from tests.core.conftest import make_package


def test_size_constants():
    assert KB == 1_000 and MB == 1_000_000 and GB == 1_000_000_000
    assert KiB == 1_024 and MiB == 1_048_576 and GiB == 1_073_741_824


def test_ns_converters():
    assert ns_to_us(4_020) == 4.02
    assert ns_to_ms(25_000_000) == 25.0
    assert ns_to_s(2_700_000_000) == 2.7


def test_measure_rfaas_rtts_rejects_bad_mode():
    with pytest.raises(ValueError):
        measure_rfaas_rtts(64, mode="tepid")


def test_measure_rfaas_rtts_reports_config():
    run = measure_rfaas_rtts(64, mode="hot", repetitions=5)
    assert run.payload_size == 64
    assert run.sandbox == "bare-metal"
    assert run.mode == "hot"
    assert run.stats.count == 5
    assert run.stats.ci_low <= run.stats.median <= run.stats.ci_high


def test_submit_before_allocate_raises():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    in_buf = inv.alloc_input(64)
    out_buf = inv.alloc_output(64)
    with pytest.raises(RFaaSError):
        inv.submit("echo", in_buf, 2, out_buf)


def test_invoke_default_out_capacity_covers_payload():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=1)
        payload = bytes(range(200))
        return (yield from inv.invoke("echo", payload))

    assert dep.run(driver()) == bytes(range(200))


def test_worker_mode_history_records_rollbacks():
    from repro.core import RFaaSConfig
    from repro.sim import ms

    config = RFaaSConfig(hot_timeout_ns=ms(1))
    dep = Deployment.build(executors=1, clients=1, config=config)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        yield from inv.invoke("echo", b"x")
        yield dep.env.timeout(ms(5))  # rollback to warm
        yield from inv.invoke("echo", b"y")  # wakes warm, re-enters hot
        return None

    dep.run(driver())
    worker = next(iter(dep.executors[0].allocations.values())).workers[0]
    assert "warm" in worker.stats.mode_history
    assert "hot" in worker.stats.mode_history
    assert worker.stats.hot_to_warm_rollbacks >= 1


def test_connection_serves_checks():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        connection = inv.connections[0]
        assert connection.serves("echo")
        assert connection.serves("double")
        assert not connection.serves("ghost")
        assert connection.serves(3)  # raw indices always pass
        return None

    dep.run(driver())


def test_future_wait_for_success_and_timeout():
    from repro.core import FunctionSpec, InvocationTimeout
    from repro.sim import ms, us

    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(FunctionSpec(name="slow", handler=lambda d: d, cost_ns=lambda s: ms(5)))
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=2)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"zz")
        # Fast function inside a generous deadline: returns the result.
        future = inv.submit("echo", in_buf, 2, out_buf, worker=0)
        result = yield from future.wait_for(ms(1))
        assert result.output() == b"zz"
        # Slow function with a tight deadline: raises, sim survives.
        future = inv.submit("slow", in_buf, 2, out_buf, worker=1)
        timed_out = False
        try:
            yield from future.wait_for(us(100))
        except InvocationTimeout:
            timed_out = True
        assert timed_out and future.abandoned
        # The platform keeps serving afterwards (late result dropped).
        yield dep.env.timeout(ms(10))
        out = yield from inv.invoke("echo", b"after")
        return out

    assert dep.run(driver()) == b"after"
