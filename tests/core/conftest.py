"""Shared fixtures for core tests: a small live deployment."""

import pytest

from repro.core import CodePackage, Deployment
from repro.core.functions import FunctionSpec, echo_function


def make_package(name="pkg"):
    package = CodePackage(name=name)
    package.add(echo_function())
    package.add(
        FunctionSpec(
            name="double",
            handler=lambda data: bytes((b * 2) % 256 for b in data),
            cost_ns=lambda size: 100 * size,
        )
    )
    return package


@pytest.fixture
def deployment():
    dep = Deployment.build(executors=2, managers=1, clients=1)
    dep.settle()
    return dep


def run_driver(dep, generator):
    """Drive a client generator to completion, return its value."""
    return dep.run(generator)
