"""Invocation-path tests: hot/warm latencies, payload integrity,
rollback, error handling -- driven through the full deployment."""

import pytest

from repro.core import CodePackage, Deployment, FunctionSpec, InvocationRejected, RFaaSError
from repro.core.functions import echo_function
from repro.rdma.latency import LatencyModel
from repro.sim import ms, us

from tests.core.conftest import make_package

RDMA_RTT_SMALL = LatencyModel().pingpong_rtt_ns(2)  # 3690


def single_worker_rtts(sandbox="bare-metal", hot_timeout="default", payload=b"ab", n=5, cost_fn=None):
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    if cost_fn is None:
        package.add(echo_function())
    else:
        package.add(FunctionSpec(name="echo", handler=lambda d: d, cost_ns=cost_fn))

    def driver():
        yield from inv.allocate(package, workers=1, sandbox=sandbox, hot_timeout_ns=hot_timeout)
        in_buf = inv.alloc_input(max(len(payload), 64))
        out_buf = inv.alloc_output(max(len(payload), 64))
        in_buf.write(payload)
        rtts = []
        outputs = []
        for _ in range(n):
            future = inv.submit("echo", in_buf, len(payload), out_buf)
            result = yield future.wait()
            rtts.append(result.rtt_ns)
            outputs.append(result.output())
        return rtts, outputs

    return dep.run(driver())


def test_hot_overhead_is_paper_326ns():
    rtts, outputs = single_worker_rtts()
    overhead = rtts[-1] - RDMA_RTT_SMALL
    assert 300 <= overhead <= 350  # paper: 326 ns
    assert all(out == b"ab" for out in outputs)


def test_warm_overhead_is_paper_4_67us():
    rtts, _ = single_worker_rtts(hot_timeout=0)
    overhead = rtts[-1] - RDMA_RTT_SMALL
    assert abs(overhead - 4_670) <= 50  # paper: 4.67 us


def test_docker_hot_penalty_50ns():
    bare, _ = single_worker_rtts(sandbox="bare-metal")
    docker, _ = single_worker_rtts(sandbox="docker")
    assert docker[-1] - bare[-1] == 50


def test_docker_warm_penalty_650ns():
    bare, _ = single_worker_rtts(sandbox="bare-metal", hot_timeout=0)
    docker, _ = single_worker_rtts(sandbox="docker", hot_timeout=0)
    assert docker[-1] - bare[-1] == 650


def test_inline_asymmetry_at_128B():
    """12-byte header pushes 128 B payloads over the inline threshold in
    the request direction only: overhead jumps to ~630 ns (Fig. 8)."""
    r64, _ = single_worker_rtts(payload=b"x" * 64)
    r128, _ = single_worker_rtts(payload=b"x" * 128)
    model = LatencyModel()
    overhead_64 = r64[-1] - model.pingpong_rtt_ns(64)
    overhead_128 = r128[-1] - model.pingpong_rtt_ns(128)
    assert 300 <= overhead_64 <= 350
    assert 600 <= overhead_128 <= 660  # paper: 630 ns


def test_payload_integrity_large():
    payload = bytes(range(256)) * 64  # 16 KiB patterned
    _, outputs = single_worker_rtts(payload=payload, n=2)
    assert outputs == [payload, payload]


def test_cost_model_adds_compute_time():
    plain, _ = single_worker_rtts()
    slow, _ = single_worker_rtts(cost_fn=lambda size: us(100))
    assert slow[-1] - plain[-1] == us(100)


def test_hot_rollback_to_warm_after_timeout():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=1, hot_timeout_ns=ms(1))
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"ab")
        # First invocation while hot.
        future = inv.submit("echo", in_buf, 2, out_buf)
        hot_result = yield future.wait()
        # Let the worker roll back to warm (idle > hot_timeout)...
        yield dep.env.timeout(ms(5))
        future = inv.submit("echo", in_buf, 2, out_buf)
        warm_result = yield future.wait()
        # ...and the execution re-enters hot mode immediately after.
        future = inv.submit("echo", in_buf, 2, out_buf)
        hot_again = yield future.wait()
        return hot_result.rtt_ns, warm_result.rtt_ns, hot_again.rtt_ns

    hot_rtt, warm_rtt, hot_again_rtt = dep.run(driver())
    assert warm_rtt - hot_rtt == pytest.approx(4_344, abs=20)  # blocking gap
    assert hot_again_rtt == hot_rtt


def test_hot_polling_accounted_in_worker_stats():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=1, hot_timeout_ns=None)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"ab")
        yield dep.env.timeout(ms(2))  # worker polls for 2 ms
        future = inv.submit("echo", in_buf, 2, out_buf)
        yield future.wait()
        return None

    dep.run(driver())
    worker = dep.executors[0].allocations[next(iter(dep.executors[0].allocations))].workers[0]
    assert worker.stats.hotpoll_ns >= ms(2)
    assert worker.stats.invocations == 1


def test_unknown_function_index_fails_future():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        future = inv.submit(42, in_buf, 2, out_buf)  # bad index
        try:
            yield future.wait()
        except InvocationRejected as error:
            return str(error)

    assert "function not found" in dep.run(driver())


def test_failing_handler_fails_future_not_worker():
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(FunctionSpec(name="boom", handler=lambda d: 1 / 0))
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=1)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"ab")
        failed = None
        future = inv.submit("boom", in_buf, 2, out_buf)
        try:
            yield future.wait()
        except RFaaSError as error:
            failed = str(error)
        # Worker survives and still serves.
        future = inv.submit("echo", in_buf, 2, out_buf)
        result = yield future.wait()
        return failed, result.output()

    failed, output = dep.run(driver())
    assert failed is not None
    assert output == b"ab"


def test_multiple_functions_in_one_worker_process():
    """Sec. IV-A: different functions execute in the same worker."""
    _, outputs = single_worker_rtts()
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        out1 = yield from inv.invoke("echo", b"\x01\x02")
        out2 = yield from inv.invoke("double", b"\x01\x02")
        return out1, out2

    out1, out2 = dep.run(driver())
    assert out1 == b"\x01\x02"
    assert out2 == b"\x02\x04"
