"""Billing database: accounts, fetch-and-add accounting, the cost model."""

import pytest

from repro.core.billing import (
    SLOT_ALLOCATION,
    SLOT_COMPUTE,
    SLOT_HOTPOLL,
    BillingAccount,
    BillingDatabase,
    BillingRates,
)
from repro.rdma import Fabric, Opcode, QueuePair, SendWR, sge
from repro.rdma.constants import Access
from repro.sim import Environment, GiB


def make_db():
    env = Environment()
    fabric = Fabric(env)
    nic = fabric.attach("manager")
    return env, fabric, nic, BillingDatabase(nic)


def test_open_account_idempotent_and_distinct():
    env, fabric, nic, db = make_db()
    a1 = db.open_account("tenant-a")
    a2 = db.open_account("tenant-a")
    b = db.open_account("tenant-b")
    assert a1 == a2
    assert a1[0] != b[0]
    assert b[0] - a1[0] == 24  # 3 x u64


def test_read_account_zero_initialized():
    env, fabric, nic, db = make_db()
    account = db.read_account("t")
    assert account.allocation_byte_seconds == 0
    assert account.compute_ns == 0
    assert account.hotpoll_ns == 0


def test_capacity_limit():
    env = Environment()
    nic = Fabric(env).attach("m")
    db = BillingDatabase(nic, capacity_accounts=2)
    db.open_account("a")
    db.open_account("b")
    with pytest.raises(RuntimeError):
        db.open_account("c")


def test_remote_fetch_add_accumulates_into_account():
    """An executor bumps counters over the fabric with atomics."""
    env, fabric, nic, db = make_db()
    exec_nic = fabric.attach("executor")
    pd_m = nic.create_pd()
    pd_e = exec_nic.create_pd()
    scratch = pd_e.register(exec_nic.alloc(64), Access.LOCAL_WRITE)
    cq_m, cq_e = nic.create_cq(), exec_nic.create_cq()
    qp_m = nic.create_qp(pd_m, cq_m)
    qp_e = exec_nic.create_qp(pd_e, cq_e)
    QueuePair.connect_pair(qp_e, qp_m)

    addr, rkey = db.open_account("tenant")

    def flush():
        for slot, delta in ((SLOT_ALLOCATION, 1000), (SLOT_COMPUTE, 222), (SLOT_HOTPOLL, 333)):
            qp_e.post_send(
                SendWR(
                    opcode=Opcode.ATOMIC_FETCH_ADD,
                    local=sge(scratch, 0, 8),
                    remote_addr=addr + 8 * slot,
                    rkey=rkey,
                    compare_add=delta,
                )
            )
            yield from cq_e.busy_poll(max_entries=1)

    env.process(flush())
    env.process(flush())
    env.run()
    account = db.read_account("tenant")
    assert account.allocation_byte_seconds == 2000
    assert account.compute_ns == 444
    assert account.hotpoll_ns == 666


def test_cost_formula():
    """C = Ca*ta + Cc*tc + Ch*th with unit conversions."""
    rates = BillingRates(allocation_per_gib_s=2.0, compute_per_s=3.0, hotpoll_per_s=5.0)
    account = BillingAccount(
        tenant="t",
        allocation_byte_seconds=4 * GiB,  # 4 GiB-seconds
        compute_ns=int(1.5e9),  # 1.5 s
        hotpoll_ns=int(2e9),  # 2 s
    )
    assert account.cost(rates) == pytest.approx(2.0 * 4 + 3.0 * 1.5 + 5.0 * 2)


def test_hot_polling_costs_more_than_idle_warm():
    """The paper's pricing intuition: hot polling is billed as active
    time, so a mostly-idle hot worker costs more than a warm one."""
    rates = BillingRates()
    hot = BillingAccount("h", allocation_byte_seconds=GiB, compute_ns=int(1e8), hotpoll_ns=int(9e8))
    warm = BillingAccount("w", allocation_byte_seconds=GiB, compute_ns=int(1e8), hotpoll_ns=0)
    assert hot.cost(rates) > warm.cost(rates)
