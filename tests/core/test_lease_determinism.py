"""Lease-id determinism (regression).

Lease ids used to come from a module-global ``itertools.count``: the
second simulation in one process saw different ids than the first, so
back-to-back runs of the *same* scenario fingerprinted differently.
Ids are now allocated per manager instance, with replicated managers
separated by disjoint namespaces.
"""

from repro.core.leases import Lease
from repro.core.resource_manager import LEASE_NAMESPACE_STRIDE, ResourceManager
from repro.rdma.fabric import Fabric
from repro.sim.wheel import new_environment


def _grant_ids(n=5, lease_namespace=0):
    """Fresh env + manager, grant *n* leases, return their ids."""
    env = new_environment("heap")
    manager = ResourceManager(
        Fabric(env).attach("m"), name="m", lease_namespace=lease_namespace
    )
    for i in range(4):
        manager.register_record(f"x{i}", host=f"x{i}", port=1, cores=36, memory_bytes=1 << 30)
    ids = []
    for i in range(n):
        response = manager.grant_lease(
            {"client": f"c{i}", "cores": 1, "memory_bytes": 1 << 20}, None
        )
        assert response["type"] == "lease_granted"
        ids.append(response["lease_id"])
    manager.kill()
    return ids


def test_repeat_runs_see_identical_ids():
    first = _grant_ids()
    second = _grant_ids()
    assert first == second == [1, 2, 3, 4, 5]


def test_denials_consume_no_ids():
    env = new_environment("heap")
    manager = ResourceManager(Fabric(env).attach("m"), name="m")
    manager.register_record("x0", host="x0", port=1, cores=2, memory_bytes=1 << 20)
    granted = manager.grant_lease({"client": "c", "cores": 2, "memory_bytes": 1 << 20}, None)
    denied = manager.grant_lease({"client": "c", "cores": 2, "memory_bytes": 1 << 20}, None)
    assert granted["lease_id"] == 1
    assert denied["type"] == "lease_denied"
    manager._do_release({"type": "lease_release", "lease_id": 1})
    regrant = manager.grant_lease({"client": "c", "cores": 2, "memory_bytes": 1 << 20}, None)
    assert regrant["lease_id"] == 2
    manager.kill()


def test_replicated_managers_use_disjoint_namespaces():
    base = _grant_ids(n=3, lease_namespace=0)
    replica = _grant_ids(n=3, lease_namespace=1)
    assert base == [1, 2, 3]
    assert replica == [
        LEASE_NAMESPACE_STRIDE + 1,
        LEASE_NAMESPACE_STRIDE + 2,
        LEASE_NAMESPACE_STRIDE + 3,
    ]
    assert not set(base) & set(replica)


def test_deployment_assigns_namespace_per_manager():
    from repro.core.deployment import Deployment

    dep = Deployment.build(executors=2, managers=2, clients=0)
    first = next(dep.managers[0]._lease_ids)
    second = next(dep.managers[1]._lease_ids)
    assert first == 1
    assert second == LEASE_NAMESPACE_STRIDE + 1


def test_adhoc_lease_falls_back_to_global_stream():
    a = Lease(
        client="c", executor_host="h", executor_port=1, cores=1,
        memory_bytes=1, issued_ns=0, timeout_ns=1,
    )
    b = Lease(
        client="c", executor_host="h", executor_port=1, cores=1,
        memory_bytes=1, issued_ns=0, timeout_ns=1,
    )
    assert a.lease_id is not None and b.lease_id == a.lease_id + 1
    explicit = Lease(
        client="c", executor_host="h", executor_port=1, cores=1,
        memory_bytes=1, issued_ns=0, timeout_ns=1, lease_id=777,
    )
    assert explicit.lease_id == 777
