"""Property-based tests on the rFaaS core: end-to-end integrity,
billing conservation, lease invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CodePackage, Deployment, RFaaSConfig
from repro.core.functions import echo_function
from repro.sim import ms


@given(
    payloads=st.lists(st.binary(min_size=1, max_size=4096), min_size=1, max_size=6),
    workers=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_echo_roundtrip_arbitrary_payloads(payloads, workers):
    """Whatever bytes go in, the same bytes come out, on any worker."""
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = CodePackage(name="prop")
    package.add(echo_function())

    def driver():
        yield from invoker.allocate(package, workers=workers)
        outputs = yield from invoker.map("echo", payloads)
        return outputs

    assert dep.run(driver()) == payloads


@given(
    invocations=st.integers(min_value=1, max_value=8),
    cost_us=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=15, deadline=None)
def test_billing_conservation(invocations, cost_us):
    """Billed compute time equals the sum of worker busy time, which is
    at least invocations x cost model."""
    from repro.core.functions import FunctionSpec

    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker(name="prop-tenant")
    package = CodePackage(name="prop")
    package.add(
        FunctionSpec(name="work", handler=lambda d: d, cost_ns=lambda s: cost_us * 1_000)
    )

    def driver():
        yield from invoker.allocate(package, workers=1)
        for _ in range(invocations):
            yield from invoker.invoke("work", b"x")
        yield from invoker.deallocate()
        yield dep.env.timeout(ms(10))
        return None

    dep.run(driver())
    account = dep.managers[0].billing.read_account("prop-tenant")
    expected = invocations * cost_us * 1_000
    assert account.compute_ns >= expected
    # Dispatch adds sub-microsecond overhead per call; never more.
    assert account.compute_ns <= expected + invocations * 1_000


@given(n_allocs=st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None)
def test_capacity_conserved_across_allocate_deallocate(n_allocs):
    """Executor cores/memory return exactly after any allocate pattern."""
    dep = Deployment.build(executors=1, clients=1)
    dep.settle()
    invoker = dep.new_invoker()
    package = CodePackage(name="prop")
    package.add(echo_function())
    executor = dep.executors[0]
    total_cores = executor.node.spec.cores
    total_memory = executor.node.spec.memory_bytes

    def driver():
        for index in range(n_allocs):
            yield from invoker.allocate(package, workers=index + 1, memory_bytes=1 << 28)
        yield from invoker.deallocate()
        yield dep.env.timeout(ms(50))
        return executor.free_cores, executor.free_memory

    free_cores, free_memory = dep.run(driver())
    assert free_cores == total_cores
    assert free_memory == total_memory
