"""Edge cases and failure semantics across the control/data planes."""

import pytest

from repro.core import AllocationError, CodePackage, Deployment, FunctionSpec, RFaaSConfig
from repro.core.functions import echo_function
from repro.rdma import QPState
from repro.sim import GiB, ms, secs

from tests.core.conftest import make_package


def build(executors=1, config=None):
    dep = Deployment.build(executors=executors, clients=1, config=config)
    dep.settle()
    return dep


def test_allocate_unknown_package_fails():
    dep = build()
    inv = dep.new_invoker()
    package = make_package()
    # Simulate a registry miss: empty the shared registry after the
    # invoker publishes (e.g. a stale image reference).
    def driver():
        dep.package_registry.clear()

        class Phantom(CodePackage):
            pass

        phantom = make_package("ghost")
        # allocate() re-registers; remove it behind the client's back
        # by pointing the executor at a fresh dict.
        dep.executors[0].package_registry = {}
        with pytest.raises(AllocationError, match="not in registry"):
            yield from inv.allocate(phantom, workers=1)
        yield dep.env.timeout(1)

    dep.run(driver())


def test_double_deallocate_is_safe():
    dep = build()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        yield from inv.deallocate()
        yield from inv.deallocate()  # second call: nothing active, no error
        return True

    assert dep.run(driver())


def test_zero_workers_rejected_by_executor():
    dep = build()
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        with pytest.raises(AllocationError):
            yield from inv.allocate(package, workers=0)
        yield dep.env.timeout(1)

    dep.run(driver())


def test_memory_exhaustion_denied():
    dep = build()
    inv = dep.new_invoker()
    package = make_package()
    node_memory = dep.executors[0].node.spec.memory_bytes

    def driver():
        with pytest.raises(AllocationError):
            yield from inv.allocate(package, workers=1, memory_bytes=node_memory + GiB)
        yield dep.env.timeout(1)

    dep.run(driver())


def test_oversized_result_faults_worker_qp():
    """The 12-byte header carries no buffer length (faithful to the
    paper), so a function whose output exceeds the client's result
    buffer faults the worker QP with a remote access error -- the same
    failure a real deployment would see."""
    dep = build()
    inv = dep.new_invoker()
    package = CodePackage(name="big")
    package.add(FunctionSpec(name="inflate", handler=lambda d: d * 100))
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=2)
        in_buf = inv.alloc_input(64)
        small_out = inv.alloc_output(16)  # too small for 100x payload
        in_buf.write(b"abcdefgh")
        future = inv.submit("inflate", in_buf, 8, small_out, worker=0)
        # The response write faults; the future never completes.
        yield dep.env.timeout(ms(1))
        assert not future.done
        worker_qp = dep.executors[0].allocations[
            next(iter(dep.executors[0].allocations))
        ].workers[0].qp
        assert worker_qp.state is QPState.ERR
        # Other workers are unaffected.
        out = yield from inv.invoke("echo", b"ok")
        return out

    assert dep.run(driver()) == b"ok"


def test_tenant_isolation_of_billing_accounts():
    dep = build(executors=2)
    inv_a = dep.new_invoker(name="tenant-a")
    inv_b = dep.new_invoker(name="tenant-b")
    package = make_package()

    def driver():
        yield from inv_a.allocate(package, workers=1)
        yield from inv_b.allocate(package, workers=1)
        for _ in range(5):
            yield from inv_a.invoke("double", b"\x01" * 64)
        yield from inv_b.invoke("echo", b"x")
        yield from inv_a.deallocate()
        yield from inv_b.deallocate()
        yield dep.env.timeout(ms(20))
        return None

    dep.run(driver())
    billing = dep.managers[0].billing
    account_a = billing.read_account("tenant-a")
    account_b = billing.read_account("tenant-b")
    # 5 costed invocations vs 1 free one: accounts must differ and
    # tenant-a must carry the compute time.
    assert account_a.compute_ns > account_b.compute_ns
    assert account_a.allocation_byte_seconds > 0
    assert account_b.allocation_byte_seconds > 0


def test_workers_isolated_between_allocations():
    """Two tenants on one executor: worker buffers are separate MRs, so
    one tenant's rkey cannot address the other's memory (PD boundary)."""
    dep = build()
    inv_a = dep.new_invoker(name="a")
    inv_b = dep.new_invoker(name="b")
    package = make_package()

    def driver():
        yield from inv_a.allocate(package, workers=1)
        yield from inv_b.allocate(package, workers=1)
        conn_a = inv_a.connections[0]
        conn_b = inv_b.connections[0]
        assert conn_a.settings["input_rkey"] != conn_b.settings["input_rkey"]
        assert conn_a.settings["input_addr"] != conn_b.settings["input_addr"]
        # Both still function independently.
        out_a = yield from inv_a.invoke("echo", b"A")
        out_b = yield from inv_b.invoke("echo", b"B")
        return out_a, out_b

    assert dep.run(driver()) == (b"A", b"B")


def test_invocation_queueing_on_busy_worker_preserves_order():
    config = RFaaSConfig()
    dep = build(config=config)
    inv = dep.new_invoker()
    package = CodePackage(name="slowpkg")
    package.add(FunctionSpec(name="tag", handler=lambda d: d, cost_ns=lambda s: ms(1)))

    def driver():
        yield from inv.allocate(package, workers=1)
        futures = []
        bufs = []
        for i in range(5):
            in_buf = inv.alloc_input(64)
            out_buf = inv.alloc_output(64)
            in_buf.write(bytes([i]))
            bufs.append(out_buf)
            futures.append(inv.submit("tag", in_buf, 1, out_buf, worker=0))
        outputs = []
        for future in futures:
            result = yield future.wait()
            outputs.append(result.output())
        return outputs

    assert dep.run(driver()) == [bytes([i]) for i in range(5)]


def test_executor_kill_mid_execution_fails_future_via_heartbeat():
    config = RFaaSConfig(heartbeat_interval_ns=ms(100), heartbeat_misses=2)
    dep = build(config=config)
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(FunctionSpec(name="long", handler=lambda d: d, cost_ns=lambda s: secs(10)))

    def driver():
        yield from inv.allocate(package, workers=1)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"zz")
        future = inv.submit("long", in_buf, 2, out_buf)
        yield dep.env.timeout(ms(10))  # execution underway
        dep.executors[0].kill()
        from repro.core import LeaseExpired

        try:
            yield future.wait()
        except LeaseExpired:
            return "failed-as-expected"

    assert dep.run(driver()) == "failed-as-expected"
