"""Per-worker invocation pipelining (the throughput extension)."""

import pytest

from repro.core import CodePackage, Deployment, FunctionSpec, RFaaSConfig
from repro.sim import ms, us


def run_burst(depth, n=8, payload=4096, cost_ns=us(40)):
    """Send a burst of n invocations to ONE worker; return (makespan, outputs)."""
    config = RFaaSConfig(worker_pipeline_depth=depth)
    dep = Deployment.build(executors=1, clients=1, config=config)
    dep.settle()
    invoker = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(
        FunctionSpec(name="tag", handler=lambda d: d[:4], cost_ns=lambda s: cost_ns,
                     output_size=lambda s: 4)
    )

    def driver():
        yield from invoker.allocate(package, workers=1, worker_buffer_bytes=depth * (payload + 64))
        futures = []
        for i in range(n):
            in_buf = invoker.alloc_input(payload)
            in_buf.write(bytes([i]) * payload)
            out_buf = invoker.alloc_output(16)
            futures.append(invoker.submit("tag", in_buf, payload, out_buf, worker=0))
        start_to_finish = dep.env.now
        outputs = []
        for future in futures:
            result = yield future.wait()
            outputs.append(result.output())
        return dep.env.now - start_to_finish, outputs

    return dep.run(driver())


def test_pipelined_outputs_correct_per_invocation():
    _, outputs = run_burst(depth=4, n=8)
    assert outputs == [bytes([i]) * 4 for i in range(8)]


def test_pipelining_improves_burst_makespan():
    serial, _ = run_burst(depth=1)
    pipelined, _ = run_burst(depth=4)
    # Transfers overlap execution: the burst completes faster.
    assert pipelined < serial


def test_depth_one_matches_paper_default():
    config = RFaaSConfig()
    assert config.worker_pipeline_depth == 1


def test_pipelining_does_not_change_single_invocation_latency():
    serial, _ = run_burst(depth=1, n=1)
    pipelined, _ = run_burst(depth=4, n=1)
    assert serial == pipelined


def test_virtual_buffers_force_depth_one():
    config = RFaaSConfig(worker_pipeline_depth=8)
    dep = Deployment.build(executors=1, clients=1, config=config)
    dep.settle()
    invoker = dep.new_invoker()
    package = CodePackage(name="p")
    from repro.core.functions import echo_function

    package.add(echo_function())

    def driver():
        yield from invoker.allocate(
            package, workers=1, worker_buffer_bytes=1 << 20, virtual_buffers=True
        )
        return invoker.connections[0].slots

    assert dep.run(driver()) == 1


def test_deep_burst_queues_beyond_slots():
    """More outstanding requests than slots: the extras queue and all
    complete correctly."""
    _, outputs = run_burst(depth=2, n=12)
    assert outputs == [bytes([i]) * 4 for i in range(12)]
