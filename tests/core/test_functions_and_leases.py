"""FunctionSpec/CodePackage and lease lifecycle tests."""

import pytest

from repro.core import CodePackage, FunctionSpec, Lease, LeaseState
from repro.core.functions import echo_function
from repro.sim import secs


# -- functions ----------------------------------------------------------------


def test_echo_function_identity():
    spec = echo_function()
    output, size = spec.execute(b"abc", 3)
    assert output == b"abc" and size == 3


def test_function_virtual_execution_sizes_only():
    spec = FunctionSpec(name="half", handler=lambda d: d[: len(d) // 2], output_size=lambda s: s // 2)
    output, size = spec.execute(None, 100)
    assert output is None and size == 50


def test_function_cost_model():
    spec = FunctionSpec(name="f", handler=lambda d: d, cost_ns=lambda s: 7 * s)
    assert spec.cost_ns(10) == 70


def test_package_indexing():
    package = CodePackage(name="p")
    i0 = package.add(echo_function("a"))
    i1 = package.add(echo_function("b"))
    assert (i0, i1) == (0, 1)
    assert package.index_of("b") == 1
    assert package.by_index(0).name == "a"
    assert package.by_index(99) is None
    assert len(package) == 2


def test_package_duplicate_name_rejected():
    package = CodePackage()
    package.add(echo_function("f"))
    with pytest.raises(ValueError):
        package.add(echo_function("f"))


def test_package_unknown_name_rejected():
    with pytest.raises(KeyError):
        CodePackage().index_of("ghost")


def test_package_default_size_matches_paper():
    assert CodePackage().size_bytes == 7_880  # the 7.88 kB no-op library


# -- leases ------------------------------------------------------------------


def make_lease(timeout_s=60):
    return Lease(
        client="c",
        executor_host="e0",
        executor_port=10000,
        cores=2,
        memory_bytes=1 << 30,
        issued_ns=secs(10),
        timeout_ns=secs(timeout_s),
    )


def test_lease_active_window():
    lease = make_lease(60)
    assert lease.is_active(secs(10))
    assert lease.is_active(secs(69))
    assert not lease.is_active(secs(70))
    assert lease.remaining_ns(secs(30)) == secs(40)
    assert lease.remaining_ns(secs(100)) == 0


def test_lease_state_transitions_one_way():
    lease = make_lease()
    lease.release()
    assert lease.state is LeaseState.RELEASED
    lease.terminate()  # no effect after release
    assert lease.state is LeaseState.RELEASED

    lease2 = make_lease()
    lease2.expire()
    assert lease2.state is LeaseState.EXPIRED

    lease3 = make_lease()
    lease3.terminate()
    assert lease3.state is LeaseState.TERMINATED
    assert not lease3.is_active(secs(11))


def test_lease_ids_unique():
    assert make_lease().lease_id != make_lease().lease_id
