"""Control-plane behaviour: allocation, leases, heartbeats, billing,
idle reclamation, failure handling, multi-manager round robin."""

import pytest

from repro.core import (
    AllocationError,
    CodePackage,
    Deployment,
    LeaseExpired,
    LeaseState,
    RFaaSConfig,
)
from repro.core.functions import echo_function
from repro.sim import GiB, ms, secs

from tests.core.conftest import make_package


def build(executors=2, managers=1, clients=1, config=None):
    dep = Deployment.build(executors=executors, managers=managers, clients=clients, config=config)
    dep.settle()
    return dep


def test_cold_start_breakdown_bare_metal_about_25ms():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        return (yield from inv.allocate(package, workers=1, sandbox="bare-metal"))

    breakdown = dep.run(driver())
    # Fig. 9a: ~25 ms total, worker spawn dominant, other steps small.
    assert ms(15) <= breakdown.total <= ms(40)
    assert breakdown.spawn_workers >= 0.5 * breakdown.total
    for step in ("connect_manager", "lease_grant", "connect_allocator", "submit_code"):
        assert breakdown.as_dict()[step] < ms(10)


def test_cold_start_docker_about_2_7s():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        return (yield from inv.allocate(package, workers=1, sandbox="docker"))

    breakdown = dep.run(driver())
    assert secs(2.3) <= breakdown.total <= secs(3.2)
    assert breakdown.spawn_workers >= 0.9 * breakdown.total


def test_lease_denied_when_no_capacity():
    config = RFaaSConfig()
    dep = build(executors=1, config=config)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        # Executor node has 36 cores; asking for more must fail.
        try:
            yield from inv.allocate(package, workers=37)
        except AllocationError as error:
            return str(error)

    assert "capacity" in dep.run(driver())


def test_manager_round_robins_executors():
    dep = build(executors=3)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        hosts = []
        for _ in range(3):
            yield from inv.allocate(package, workers=1)
            hosts.append(list(inv.leases.values())[-1].executor_host)
        return hosts

    hosts = dep.run(driver())
    assert len(set(hosts)) == 3  # spread across all executors


def test_workers_spread_and_parallel_invocations():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=4)
        assert inv.live_workers == 4
        futures = []
        bufs = []
        for i in range(4):
            in_buf = inv.alloc_input(64)
            out_buf = inv.alloc_output(64)
            in_buf.write(bytes([i, i]))
            bufs.append(out_buf)
            futures.append(inv.submit("echo", in_buf, 2, out_buf, worker=i))
        results = []
        for future in futures:
            results.append((yield future.wait()))
        return [r.output() for r in results]

    outputs = dep.run(driver())
    assert outputs == [bytes([i, i]) for i in range(4)]


def test_deallocate_releases_executor_capacity():
    dep = build(executors=1)
    inv = dep.new_invoker()
    package = make_package()
    executor = dep.executors[0]

    def driver():
        yield from inv.allocate(package, workers=4)
        assert executor.free_cores == 32
        yield from inv.deallocate()
        yield dep.env.timeout(ms(50))
        return executor.free_cores, len(executor.allocations)

    free_cores, allocations = dep.run(driver())
    assert free_cores == 36
    assert allocations == 0
    assert all(lease.state is LeaseState.RELEASED for lease in inv.leases.values())


def test_idle_executor_reclaimed_after_timeout():
    config = RFaaSConfig(executor_idle_timeout_ns=secs(1), hot_timeout_ns=ms(10))
    dep = build(executors=1, config=config)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        out = yield from inv.invoke("echo", b"hi")
        assert out == b"hi"
        # Go idle past the executor's limit; the reaper tears down.
        yield dep.env.timeout(secs(3))
        return len(dep.executors[0].allocations)

    assert dep.run(driver()) == 0


def test_lease_expiry_notifies_client():
    config = RFaaSConfig(lease_timeout_ns=secs(2))
    dep = build(executors=1, config=config)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        yield from inv.allocate(package, workers=1)
        lease_id = next(iter(inv.leases))
        yield dep.env.timeout(secs(4))
        return lease_id

    lease_id = dep.run(driver())
    assert lease_id in inv.terminated_leases
    assert inv.live_workers == 0


def test_executor_failure_detected_by_heartbeats():
    config = RFaaSConfig(heartbeat_interval_ns=ms(100), heartbeat_misses=2)
    dep = build(executors=2, config=config)
    inv = dep.new_invoker()
    package = make_package()
    manager = dep.managers[0]

    def driver():
        yield from inv.allocate(package, workers=1)
        lease = next(iter(inv.leases.values()))
        victim = next(e for e in dep.executors if e.nic.name == lease.executor_host)
        victim.kill()
        # Wait for misses to accumulate and the termination notice.
        yield dep.env.timeout(ms(1500))
        record = manager.executors[victim.name]
        return record.alive, list(inv.terminated_leases)

    alive, terminated = dep.run(driver())
    assert alive is False
    assert len(terminated) == 1


def test_outstanding_future_fails_when_executor_dies():
    config = RFaaSConfig(heartbeat_interval_ns=ms(100), heartbeat_misses=2)
    dep = build(executors=1, config=config)
    inv = dep.new_invoker()
    package = CodePackage(name="p")
    package.add(echo_function())

    def driver():
        yield from inv.allocate(package, workers=1)
        in_buf = inv.alloc_input(64)
        out_buf = inv.alloc_output(64)
        in_buf.write(b"zz")
        dep.executors[0].kill()
        future = inv.submit("echo", in_buf, 2, out_buf)
        try:
            yield future.wait()
        except LeaseExpired as error:
            return str(error)

    assert "failed" in dep.run(driver())


def test_billing_counters_flow_to_manager():
    config = RFaaSConfig(hot_timeout_ns=ms(1))
    dep = build(executors=1, config=config)
    inv = dep.new_invoker(name="tenant-x")
    package = CodePackage(name="p")
    package.add(
        echo_function()
    )
    manager = dep.managers[0]

    def driver():
        yield from inv.allocate(package, workers=1, memory_bytes=2 * GiB)
        for _ in range(3):
            yield from inv.invoke("echo", b"pay")
        yield dep.env.timeout(ms(10))
        yield from inv.deallocate()
        yield dep.env.timeout(ms(50))
        return manager.billing.read_account("tenant-x")

    account = dep.run(driver())
    assert account.allocation_byte_seconds > 0
    assert account.hotpoll_ns > 0  # the worker polled between calls


def test_multi_manager_deployment_splits_executors():
    dep = build(executors=4, managers=2)
    counts = [len(m.executors) for m in dep.managers]
    assert counts == [2, 2]
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        for _ in range(4):
            yield from inv.allocate(package, workers=1)
        return sorted({lease.executor_host for lease in inv.leases.values()})

    hosts = dep.run(driver())
    # Leases spread over executors of both managers.
    assert len(hosts) >= 3


def test_second_manager_serves_when_first_full():
    dep = build(executors=2, managers=2)
    inv = dep.new_invoker()
    package = make_package()

    def driver():
        # Fill manager0's only executor completely...
        yield from inv.allocate(package, workers=36)
        # ...the next allocation must come from manager1's executor.
        yield from inv.allocate(package, workers=36)
        return sorted({lease.executor_host for lease in inv.leases.values()})

    hosts = dep.run(driver())
    assert len(hosts) == 2
