"""OpenMP model and the Fig. 12/13 scenario drivers (small scale)."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.hpc.apps import BlackScholesScenario, GemmScenario, JacobiScenario
from repro.hpc.openmp import FORK_JOIN_NS, OpenMPModel, openmp_parallel_for_ns
from repro.sim import Environment, ms, ns_to_ms


def test_parallel_for_scales():
    single = openmp_parallel_for_ns(ms(100), 1)
    four = openmp_parallel_for_ns(ms(100), 4)
    assert single == ms(100)
    assert four == ms(25) + FORK_JOIN_NS


def test_parallel_for_validation():
    with pytest.raises(ValueError):
        openmp_parallel_for_ns(1000, 0)


def test_openmp_team_claims_cores():
    env = Environment()
    node = Node(env, "n", NodeSpec(cores=8))
    team = OpenMPModel(env, node, threads=4)

    def driver():
        return (yield from team.parallel_for(ms(10)))

    duration = env.run(until=env.process(driver()))
    assert duration == openmp_parallel_for_ns(ms(10), 4)
    assert node.free_cores == 8  # released afterwards


def test_openmp_team_validation():
    env = Environment()
    node = Node(env, "n", NodeSpec(cores=4))
    with pytest.raises(ValueError):
        OpenMPModel(env, node, threads=5)
    with pytest.raises(ValueError):
        OpenMPModel(env, node, threads=0)


# -- Black-Scholes (Fig. 12) -------------------------------------------------


def test_blackscholes_rfaas_includes_transfer_wall():
    """At high parallelism the ~20 ms network transfer dominates."""
    scenario = BlackScholesScenario()
    openmp_32 = scenario.openmp_ns(32)
    rfaas_32 = scenario.rfaas_ns(32)
    # The full 228 MB must cross the client link: >= ~18.6 ms.
    assert rfaas_32 >= ms(18)
    assert rfaas_32 > openmp_32  # past the crossover


def test_blackscholes_rfaas_competitive_at_low_parallelism():
    scenario = BlackScholesScenario()
    assert scenario.rfaas_ns(1) <= scenario.openmp_ns(1) * 1.10


def test_blackscholes_hybrid_beats_both():
    scenario = BlackScholesScenario()
    for workers in (4, 16):
        hybrid = scenario.hybrid_ns(workers)
        assert hybrid <= scenario.openmp_ns(workers)
        assert hybrid <= scenario.rfaas_ns(workers)


# -- GEMM (Fig. 13a) ----------------------------------------------------------


def test_gemm_speedup_in_paper_band():
    scenario = GemmScenario(n=2048, repetitions=2)
    for ranks in (2, 8):
        mpi = scenario.mpi_ns(ranks)
        hybrid = scenario.mpi_rfaas_ns(ranks)
        speedup = mpi / hybrid
        assert 1.7 <= speedup <= 2.0  # paper: 1.88x-1.94x


def test_gemm_baseline_flat_in_ranks():
    """Ranks are independent; the baseline should not degrade."""
    scenario = GemmScenario(n=1024, repetitions=2)
    assert scenario.mpi_ns(2) == pytest.approx(scenario.mpi_ns(8), rel=0.01)


# -- Jacobi (Fig. 13b) ---------------------------------------------------------


def test_jacobi_speedup_in_paper_band():
    scenario = JacobiScenario(n=2000, iterations=200)
    for ranks in (2, 8):
        mpi = scenario.mpi_ns(ranks)
        hybrid = scenario.mpi_rfaas_ns(ranks)
        speedup = mpi / hybrid
        assert 1.7 <= speedup <= 2.2  # paper's band


def test_jacobi_caching_beats_resending_the_matrix():
    """The warm-sandbox optimization: iterate messages are tiny."""
    from repro.workloads.jacobi import iterate_bytes, setup_bytes

    n = 2000
    assert iterate_bytes(n) < setup_bytes(n) / 1000
