"""Mini-MPI: point-to-point, collectives, timing semantics."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.hpc.mpi import ANY_SOURCE, EAGER_THRESHOLD, MpiJob
from repro.rdma import Fabric
from repro.sim import Environment, us


def make_job(ranks, nodes=2):
    env = Environment()
    fabric = Fabric(env)
    node_list = [
        Node(env, f"mpi{i}", NodeSpec(), nic=fabric.attach(f"mpi{i}")) for i in range(nodes)
    ]
    return env, MpiJob(fabric, node_list, ranks)


def run_job(env, job, main):
    return env.run(until=env.process(job.run(main)))


def test_send_recv_payload():
    env, job = make_job(2)

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, payload=b"hello", nbytes=5)
            return None
        message = yield from ctx.recv(source=0)
        return message.payload

    results = run_job(env, job, main)
    assert results[1] == b"hello"


def test_recv_filters_by_source_and_tag():
    env, job = make_job(3)

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.send(2, payload="from0", tag=7)
        elif ctx.rank == 1:
            yield from ctx.send(2, payload="from1", tag=9)
        else:
            tagged = yield from ctx.recv(tag=9)
            by_source = yield from ctx.recv(source=0)
            return (tagged.payload, by_source.payload)

    results = run_job(env, job, main)
    assert results[2] == ("from1", "from0")


def test_same_node_cheaper_than_cross_node():
    env, job = make_job(4, nodes=2)  # ranks 0,1 on node0; 2,3 on node1
    durations = {}

    def main(ctx):
        if ctx.rank == 0:
            start = ctx.env.now
            yield from ctx.send(1, nbytes=10_000)  # same node
            durations["local"] = ctx.env.now - start
            start = ctx.env.now
            yield from ctx.send(2, nbytes=10_000)  # cross node
            durations["remote"] = ctx.env.now - start
        elif ctx.rank in (1, 2):
            yield from ctx.recv(source=0)

    run_job(env, job, main)
    assert durations["local"] < durations["remote"]


def test_rendezvous_adds_handshake():
    env, job = make_job(2)
    durations = {}

    def main(ctx):
        if ctx.rank == 0:
            start = ctx.env.now
            yield from ctx.send(1, nbytes=EAGER_THRESHOLD)
            durations["eager"] = ctx.env.now - start
            start = ctx.env.now
            yield from ctx.send(1, nbytes=EAGER_THRESHOLD + 1)
            durations["rendezvous"] = ctx.env.now - start
        else:
            yield from ctx.recv()
            yield from ctx.recv()

    run_job(env, job, main)
    # The extra RTS/CTS handshake adds two wire traversals (~1.6 us).
    assert durations["rendezvous"] - durations["eager"] > us(1)


def test_barrier_synchronizes():
    env, job = make_job(5)
    after = {}

    def main(ctx):
        yield from ctx.compute(ctx.rank * 1_000)  # staggered arrival
        yield from ctx.barrier()
        after[ctx.rank] = ctx.env.now

    run_job(env, job, main)
    latest_arrival = 4 * 1_000
    assert all(t >= latest_arrival for t in after.values())


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 9])
def test_bcast_reaches_all(size):
    env, job = make_job(size)

    def main(ctx):
        value = "payload" if ctx.rank == 0 else None
        value = yield from ctx.bcast(value, root=0)
        return value

    results = run_job(env, job, main)
    assert results == ["payload"] * size


def test_bcast_nonzero_root():
    env, job = make_job(4)

    def main(ctx):
        value = 42 if ctx.rank == 2 else None
        return (yield from ctx.bcast(value, root=2))

    assert run_job(env, job, main) == [42] * 4


def test_gather_collects_in_rank_order():
    env, job = make_job(4)

    def main(ctx):
        return (yield from ctx.gather(ctx.rank * 10, root=0))

    results = run_job(env, job, main)
    assert results[0] == [0, 10, 20, 30]
    assert results[1:] == [None, None, None]


def test_allreduce_sum():
    env, job = make_job(6)

    def main(ctx):
        return (yield from ctx.allreduce(ctx.rank + 1, op=lambda a, b: a + b))

    assert run_job(env, job, main) == [21] * 6


def test_send_invalid_rank_rejected():
    env, job = make_job(2)

    def main(ctx):
        if ctx.rank == 0:
            with pytest.raises(ValueError):
                yield from ctx.send(5)
        yield ctx.env.timeout(1)

    run_job(env, job, main)


def test_block_rank_distribution():
    env, job = make_job(6, nodes=2)
    assert [ctx.node.name for ctx in job.ranks] == ["mpi0"] * 3 + ["mpi1"] * 3


def test_compute_advances_clock():
    env, job = make_job(1)

    def main(ctx):
        yield from ctx.compute(12_345)
        return ctx.env.now

    assert run_job(env, job, main) == [12_345]


def test_reduce_to_root_in_rank_order():
    env, job = make_job(4)

    def main(ctx):
        # Non-commutative op checks rank ordering: string concat.
        return (yield from ctx.reduce(str(ctx.rank), op=lambda a, b: a + b, root=2))

    results = run_job(env, job, main)
    assert results[2] == "0123"
    assert results[0] is None and results[3] is None


def test_scatter_distributes_slices():
    env, job = make_job(3)

    def main(ctx):
        values = [f"part-{i}" for i in range(3)] if ctx.rank == 0 else None
        return (yield from ctx.scatter(values, root=0))

    assert run_job(env, job, main) == ["part-0", "part-1", "part-2"]


def test_scatter_wrong_length_rejected():
    env, job = make_job(3)

    def main(ctx):
        if ctx.rank == 0:
            with pytest.raises(ValueError):
                yield from ctx.scatter([1, 2], root=0)
        yield ctx.env.timeout(1)

    run_job(env, job, main)


def test_alltoall_transposes():
    env, job = make_job(4)

    def main(ctx):
        values = [(ctx.rank, dest) for dest in range(4)]
        return (yield from ctx.alltoall(values))

    results = run_job(env, job, main)
    for receiver, received in enumerate(results):
        assert received == [(sender, receiver) for sender in range(4)]


def test_allreduce_noncommutative_is_rank_ordered():
    env, job = make_job(3)

    def main(ctx):
        return (yield from ctx.allreduce(str(ctx.rank), op=lambda a, b: a + b))

    assert run_job(env, job, main) == ["012"] * 3
